// Propagatable: the message protocol shared by constraint objects and
// implicit-constraint variables (thesis §5.1.1 — "these variable-constraints
// play the roles of both variable and constraint ... responding to
// propagation messages like isSatisfied and propagateVariable:").
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/justification.h"
#include "core/status.h"

namespace stemcp::core {

class AgendaScheduler;
class Histogram;
class PropagationContext;
class Variable;

/// Result sets for dependency analysis (thesis Figs 4.11/4.12).
struct DependencyTrace {
  std::set<const Variable*> variables;
  std::set<const Propagatable*> constraints;

  bool contains(const Variable& v) const { return variables.count(&v) != 0; }
  bool contains(const Propagatable& c) const {
    return constraints.count(&c) != 0;
  }
};

class Propagatable {
 public:
  virtual ~Propagatable() = default;

  /// `propagateVariable:` — react to a changed argument, either by inferring
  /// values immediately or by scheduling on an agenda.
  virtual Status propagate_variable(Variable& changed) = 0;

  /// Deferred entry point invoked by the agenda scheduler; `changed` may be
  /// null for functional constraints (they recompute from all arguments).
  virtual Status propagate_scheduled(Variable* changed) {
    return changed ? propagate_variable(*changed) : Status::ok();
  }

  /// `isSatisfied` — test the assertion against the current argument values.
  virtual bool is_satisfied() const = 0;

  /// Violation handler hook (thesis §4.2.3); default defers to the context's
  /// installed handler.  Subclasses may substitute specialized debuggers.
  virtual void on_violation(const ViolationInfo& info,
                            PropagationContext& ctx);

  /// Dependency analysis: collect all variables/constraints the value of
  /// `var` (set by this constraint) depends on.
  virtual void antecedents_of(const Variable& var, DependencyTrace& out) const;
  /// Dependency analysis: collect everything downstream of `var` through
  /// this constraint.
  virtual void consequences_of(const Variable& var,
                               DependencyTrace& out) const;
  /// `testMembershipOf:inDependency:` — does `record` (formulated by this
  /// constraint) say the recorded value depends on `var`?
  virtual bool test_membership(const Variable& var,
                               const DependencyRecord& record) const;

  /// Human-readable identification for the constraint editor and violation
  /// messages.
  virtual std::string describe() const = 0;

  /// Short type tag used as a metrics key ("equality", "uniMaximum", ...);
  /// constraint subclasses forward their kind().
  virtual std::string type_name() const { return "propagatable"; }

 private:
  // ---- intrusive hot-path state (docs/PERFORMANCE.md) ---------------------
  // Epoch stamps and cached handles maintained by the engine and scheduler;
  // a stamp is live only while it equals the owner's current epoch, so none
  // of this needs clearing between sessions.  All stamps draw from
  // next_global_stamp() and are therefore unique across owners.
  friend class AgendaScheduler;
  friend class PropagationContext;

  /// mark_visited dedup: equals the context's session epoch once this
  /// constraint is on the visited list.
  std::uint64_t visit_epoch_ = 0;

  /// Agenda duplicate suppression: the (queue, variable) pairs currently
  /// queued for this task, valid while sched_epoch_ matches the scheduler's
  /// epoch.  Capacity persists across sessions (steady state: no allocation).
  std::uint64_t sched_epoch_ = 0;
  std::vector<std::pair<std::uint32_t, Variable*>> queued_;

  /// Interned agenda id (AgendaScheduler::schedule_cached), keyed by the
  /// literal name pointer and the scheduler's interning generation.
  const char* agenda_cache_name_ = nullptr;
  std::uint64_t agenda_cache_gen_ = 0;
  std::uint32_t agenda_cache_id_ = 0;

  /// Pre-resolved per-type timing histograms ("run_ns.<type>",
  /// "check_ns.<type>"), each validated by the metrics generation it was
  /// resolved under.
  Histogram* run_hist_ = nullptr;
  std::uint64_t run_hist_gen_ = 0;
  Histogram* check_hist_ = nullptr;
  std::uint64_t check_hist_gen_ = 0;
};

}  // namespace stemcp::core
