// Value: the typed payload carried by constraint variables.
//
// Smalltalk variables hold arbitrary objects; the C++ equivalent is a small
// closed variant covering every value kind the design environment propagates
// (nil, booleans, integers such as bit widths, reals such as delays, strings,
// bounding boxes) plus an open escape hatch (`Boxed`) used by the environment
// layer for domain values like signal types.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>

#include "core/geometry.h"

namespace stemcp::core {

/// Polymorphic payload for domain-specific value kinds (e.g. signal types).
/// Boxed payloads are immutable and shared; equality is semantic.
class Boxed {
 public:
  virtual ~Boxed() = default;
  virtual bool equals(const Boxed& other) const = 0;
  virtual std::string to_string() const = 0;
};

class Value {
 public:
  Value() = default;  // nil
  Value(bool b) : v_(b) {}
  Value(std::int64_t i) : v_(i) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(double d) : v_(d) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Rect r) : v_(r) {}
  Value(std::shared_ptr<const Boxed> b) : v_(std::move(b)) {}

  static Value nil() { return Value{}; }

  bool is_nil() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_real() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_rect() const { return std::holds_alternative<Rect>(v_); }
  bool is_boxed() const {
    return std::holds_alternative<std::shared_ptr<const Boxed>>(v_);
  }
  /// Numeric = int or real; participates in arithmetic constraints.
  bool is_number() const { return is_int() || is_real(); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_real() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Rect& as_rect() const { return std::get<Rect>(v_); }
  const std::shared_ptr<const Boxed>& as_boxed() const {
    return std::get<std::shared_ptr<const Boxed>>(v_);
  }

  /// Numeric value widened to double; throws std::bad_variant_access if the
  /// value is not a number.
  double as_number() const {
    return is_int() ? static_cast<double>(as_int()) : as_real();
  }

  /// Typed access to a Boxed payload; nullptr if nil or a different type.
  template <typename T>
  const T* as() const {
    if (!is_boxed()) return nullptr;
    return dynamic_cast<const T*>(as_boxed().get());
  }

  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }

  std::string to_string() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Rect,
               std::shared_ptr<const Boxed>>
      v_;
};

}  // namespace stemcp::core
