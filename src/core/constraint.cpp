#include "core/constraint.h"

#include <algorithm>

#include "core/engine.h"

namespace stemcp::core {

namespace {

// Dependency traces store const pointers (analysis is conceptually
// read-only); erasure is the one place the results are mutated.
Variable* mutable_var(const Variable* v) { return const_cast<Variable*>(v); }

}  // namespace

bool Constraint::references(const Variable& v) const {
  return std::find(args_.begin(), args_.end(), &v) != args_.end();
}

Status Constraint::propagate_variable(Variable& changed) {
  if (!enabled_) return Status::ok();
  ctx_.mark_visited(*this);
  return immediate_inference_by_changing(changed);
}

Status Constraint::enable() {
  if (enabled_) return Status::ok();
  enabled_ = true;
  return reinitialize_variables();
}

Status Constraint::immediate_inference_by_changing(Variable&) {
  return Status::ok();
}

void Constraint::basic_add_argument(Variable& v) {
  if (references(v)) return;
  args_.push_back(&v);
  v.attach(*this);
}

Status Constraint::add_argument(Variable& v) {
  if (ctx_.tracing()) {
    ctx_.tracer().emit(TraceEventType::kNetworkEdit,
                       "addArgument " + v.path() + " to " + describe(), this);
  }
  basic_add_argument(v);
  return reinitialize_variables();
}

void Constraint::detach_argument_raw(Variable& v) {
  args_.erase(std::remove(args_.begin(), args_.end(), &v), args_.end());
}

void Constraint::remove_argument(Variable& v) {
  if (!references(v)) return;
  if (ctx_.tracing()) {
    ctx_.tracer().emit(TraceEventType::kNetworkEdit,
                       "removeArgument " + v.path() + " from " + describe(),
                       this);
  }
  detach_argument_raw(v);
  v.detach(*this);
  if (v.last_set_by().constraint() == this) {
    // The variable's value was last set by this constraint: it and all of
    // its consequences become unjustified (thesis Fig 4.14).
    DependencyTrace t;
    v.consequences(t);
    v.reset_raw();
    for (const Variable* cv : t.variables) {
      if (cv != &v) mutable_var(cv)->reset_raw();
    }
  } else {
    // Reset every variable that is a consequence of v propagating through
    // this constraint.
    DependencyTrace t;
    consequences_of(v, t);
    for (const Variable* cv : t.variables) mutable_var(cv)->reset_raw();
  }
  reinitialize_variables();
}

Status Constraint::reinitialize_variables() {
  if (!ctx_.enabled()) return Status::ok();
  // Network edits happen outside propagation sessions; the re-propagation
  // of arguments is itself a session (thesis Fig 4.13 rePropagate).
  return ctx_.run_session([&]() -> Status {
    // Organize arguments into three precedence groups: user-specified,
    // constraint-dependent, then other independents.
    std::vector<Variable*> ordered;
    ordered.reserve(args_.size());
    for (Variable* a : args_) {
      if (a->last_set_by().is_user()) ordered.push_back(a);
    }
    for (Variable* a : args_) {
      if (a->last_set_by().is_propagated()) ordered.push_back(a);
    }
    for (Variable* a : args_) {
      if (!a->last_set_by().is_user() && !a->last_set_by().is_propagated()) {
        ordered.push_back(a);
      }
    }
    for (Variable* arg : ordered) {
      // Nil arguments have no value to assert; leaving them unvisited keeps
      // them assignable by the propagation of the other arguments.
      if (!arg->has_value()) continue;
      // putIfAbsent: arguments already visited (e.g. assigned by an earlier
      // argument's propagation through this constraint) are skipped.
      if (ctx_.was_visited(*arg)) continue;
      ctx_.record_visited(*arg);
      const Status s = arg->propagate_along(*this);
      if (s.is_violation()) return s;
    }
    return Status::ok();
  });
}

void Constraint::antecedents_of(const Variable& var,
                                DependencyTrace& out) const {
  out.constraints.insert(this);
  const DependencyRecord& record = var.last_set_by().record();
  for (const Variable* arg : args_) {
    if (arg == &var) continue;
    if (test_membership(*arg, record)) arg->antecedents(out);
  }
}

void Constraint::consequences_of(const Variable& var,
                                 DependencyTrace& out) const {
  out.constraints.insert(this);
  for (const Variable* arg : args_) {
    if (arg == &var) continue;
    if (arg->last_set_by().constraint() == this &&
        test_membership(var, arg->last_set_by().record())) {
      arg->consequences(out);
    }
  }
}

Status Constraint::propagate_value_to(Variable& target, Value v,
                                      DependencyRecord record) {
  return target.set_from_constraint(
      std::move(v), *this,
      Justification::propagated(*this, std::move(record), strength_));
}

std::string Constraint::describe() const {
  std::string s = kind() + "(";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i) s += ", ";
    s += args_[i]->path();
  }
  return s + ")";
}

}  // namespace stemcp::core
