#include "core/relaxation.h"

#include <set>

#include "core/constraints/equality.h"
#include "core/constraints/functional.h"
#include "core/constraints/predicate.h"
#include "core/engine.h"

namespace stemcp::core {

namespace {

bool is_free(const Variable& v) {
  if (v.last_set_by().source() == Source::kUser) return false;
  return v.value().is_nil() || v.value().is_number();
}

void assign(Variable& v, double x, std::size_t& adjustments) {
  // The solver works outside propagation (global repair); values carry
  // #APPLICATION justification so later user edits still outrank them.
  v.set(Value(x), Justification::application());
  ++adjustments;
}

/// One local repair step for a single constraint; returns true if it
/// changed anything.
bool repair(Constraint& c, std::size_t& adjustments) {
  if (c.is_satisfied()) return false;

  if (auto* eq = dynamic_cast<EqualityConstraint*>(&c)) {
    // Pinned value wins; otherwise the mean of the present values.
    const Variable* pinned = nullptr;
    double sum = 0.0;
    int present = 0;
    for (const Variable* arg : eq->arguments()) {
      if (!arg->value().is_number()) continue;
      if (arg->last_set_by().source() == Source::kUser) {
        if (pinned != nullptr &&
            pinned->value().as_number() != arg->value().as_number()) {
          return false;  // two disagreeing user values: locally unsolvable
        }
        pinned = arg;
      }
      sum += arg->value().as_number();
      ++present;
    }
    if (present == 0) return false;
    const double target =
        pinned != nullptr ? pinned->value().as_number() : sum / present;
    bool changed = false;
    for (Variable* arg : eq->arguments()) {
      if (!is_free(*arg)) continue;
      if (arg->value().is_number() && arg->value().as_number() == target) {
        continue;
      }
      assign(*arg, target, adjustments);
      changed = true;
    }
    return changed;
  }

  if (auto* lin = dynamic_cast<UniLinearConstraint*>(&c)) {
    Variable* result = lin->result_variable();
    const Value computed = lin->evaluate_function();
    if (result != nullptr && is_free(*result) && computed.is_number()) {
      assign(*result, computed.as_number(), adjustments);
      return true;
    }
    return false;
  }

  if (auto* add = dynamic_cast<UniAdditionConstraint*>(&c)) {
    Variable* result = add->result_variable();
    const Value computed = add->evaluate_function();
    if (result == nullptr) return false;
    if (is_free(*result) && computed.is_number()) {
      assign(*result, computed.as_number(), adjustments);
      return true;
    }
    // Result pinned: distribute the error over the free inputs.
    if (!result->value().is_number() || !computed.is_number()) return false;
    const double error = result->value().as_number() - computed.as_number();
    std::vector<Variable*> free_inputs;
    for (Variable* arg : add->arguments()) {
      if (arg == result) continue;
      if (is_free(*arg) && arg->value().is_number()) {
        free_inputs.push_back(arg);
      }
    }
    if (free_inputs.empty()) return false;
    const double share = error / static_cast<double>(free_inputs.size());
    for (Variable* arg : free_inputs) {
      assign(*arg, arg->value().as_number() + share, adjustments);
    }
    return true;
  }

  if (auto* fn = dynamic_cast<FunctionalConstraint*>(&c)) {
    // Generic functional (max/min/product/...): only the forward direction
    // is repairable.
    Variable* result = fn->result_variable();
    const Value computed = fn->evaluate_function();
    if (result != nullptr && is_free(*result) && computed.is_number()) {
      assign(*result, computed.as_number(), adjustments);
      return true;
    }
    return false;
  }

  if (auto* bound = dynamic_cast<BoundConstraint*>(&c)) {
    if (!bound->bound().is_number()) return false;
    bool changed = false;
    for (Variable* arg : bound->arguments()) {
      if (!is_free(*arg) || !arg->value().is_number()) continue;
      const double x = arg->value().as_number();
      const double b = bound->bound().as_number();
      if (!holds(bound->relation(), x, b)) {
        assign(*arg, b, adjustments);  // clamp to the bound
        changed = true;
      }
    }
    return changed;
  }

  if (auto* spacing = dynamic_cast<SpacingConstraint*>(&c)) {
    Variable* left = spacing->left();
    Variable* right = spacing->right();
    if (left == nullptr || right == nullptr) return false;
    if (!left->value().is_number() || !right->value().is_number()) {
      return false;
    }
    // Push the free side outward, preferring to move `right` (compaction
    // grows rightward from pinned origins).
    if (is_free(*right)) {
      assign(*right, left->value().as_number() + spacing->gap(), adjustments);
      return true;
    }
    if (is_free(*left)) {
      assign(*left, right->value().as_number() - spacing->gap(), adjustments);
      return true;
    }
    return false;
  }

  if (auto* range = dynamic_cast<RangeConstraint*>(&c)) {
    bool changed = false;
    for (Variable* arg : range->arguments()) {
      if (!is_free(*arg) || !arg->value().is_number()) continue;
      const double x = arg->value().as_number();
      if (x < range->lo()) {
        assign(*arg, range->lo(), adjustments);
        changed = true;
      } else if (x > range->hi()) {
        assign(*arg, range->hi(), adjustments);
        changed = true;
      }
    }
    return changed;
  }

  return false;  // unknown constraint kind: no repair knowledge
}

}  // namespace

RelaxationSolver::Result RelaxationSolver::solve(
    PropagationContext& ctx, const std::vector<Constraint*>& constraints,
    Options options) {
  Result result;
  const bool was_enabled = ctx.enabled();
  ctx.set_enabled(false);  // global repair, not local propagation

  for (result.sweeps = 0; result.sweeps < options.max_sweeps;
       ++result.sweeps) {
    bool all_satisfied = true;
    bool any_change = false;
    for (Constraint* c : constraints) {
      if (c->is_satisfied()) continue;
      all_satisfied = false;
      any_change |= repair(*c, result.adjustments);
    }
    if (all_satisfied) {
      result.solved = true;
      break;
    }
    if (!any_change) break;  // stuck: no repair made progress
  }

  // Final audit.
  result.unsatisfied.clear();
  for (const Constraint* c : constraints) {
    if (!c->is_satisfied()) result.unsatisfied.push_back(c);
  }
  result.solved = result.unsatisfied.empty();

  ctx.set_enabled(was_enabled);
  return result;
}

RelaxationSolver::Result RelaxationSolver::recover(PropagationContext& ctx,
                                                   Options options) {
  const Result result = solve(ctx, ctx.all_constraints(), options);
  ctx.set_enabled(true);
  return result;
}

RelaxationSolver::Result RelaxationSolver::solve_around(
    PropagationContext& ctx, const std::vector<Variable*>& roots,
    Options options) {
  // Breadth-first closure over the bipartite graph.
  std::set<Variable*> vars;
  std::set<Constraint*> cons;
  std::vector<Variable*> queue = roots;
  while (!queue.empty()) {
    Variable* v = queue.back();
    queue.pop_back();
    if (!vars.insert(v).second) continue;
    for (Propagatable* p : v->constraints()) {
      auto* c = dynamic_cast<Constraint*>(p);
      if (c == nullptr || !cons.insert(c).second) continue;
      for (Variable* arg : c->arguments()) queue.push_back(arg);
    }
  }
  return solve(ctx, {cons.begin(), cons.end()}, options);
}

}  // namespace stemcp::core
