#include "core/engine.h"

#include <algorithm>
#include <stdexcept>

#include "core/constraint.h"
#include "core/variable.h"

namespace stemcp::core {

PropagationContext::PropagationContext() = default;
PropagationContext::~PropagationContext() = default;

std::vector<Constraint*> PropagationContext::all_constraints() const {
  std::vector<Constraint*> out;
  out.reserve(constraints_.size());
  for (const auto& c : constraints_) out.push_back(c.get());
  return out;
}

void PropagationContext::destroy_constraint(Constraint& c) {
  // Collect every variable whose value transitively depends on this
  // constraint, before breaking any link.
  DependencyTrace trace;
  for (Variable* arg : c.arguments()) {
    if (arg->last_set_by().constraint() == &c) arg->consequences(trace);
  }
  // Detach from all arguments.
  const auto args = c.arguments();
  for (Variable* arg : args) {
    c.detach_argument_raw(*arg);
    arg->detach(c);
  }
  // Erase the now-unjustified values.
  for (const Variable* v : trace.variables) {
    const_cast<Variable*>(v)->reset_raw();
  }
  auto it = std::find_if(
      constraints_.begin(), constraints_.end(),
      [&](const std::unique_ptr<Constraint>& p) { return p.get() == &c; });
  if (it == constraints_.end()) {
    throw std::logic_error("destroy_constraint: not owned by this context");
  }
  constraints_.erase(it);
}

Status PropagationContext::run_session(const std::function<Status()>& body) {
  if (in_propagation_) {
    throw std::logic_error("nested propagation session");
  }
  in_propagation_ = true;
  ++stats_.sessions;
  visited_vars_.clear();
  visited_constraint_set_.clear();
  visited_constraints_.clear();
  agenda_.clear();
  last_violation_.reset();

  Status s = body();
  if (s.is_ok()) s = drain_agendas();
  if (s.is_ok()) s = check_visited_constraints();

  if (s.is_violation()) {
    ++stats_.violations;
    if (last_violation_) {
      // Invoke the violated constraint's handler (thesis §4.2.3); the
      // default reports through the context.
      auto* source = const_cast<Propagatable*>(last_violation_->constraint);
      if (source != nullptr) {
        source->on_violation(*last_violation_, *this);
      } else {
        report_violation(*last_violation_);
      }
    }
    restore_visited();
  }
  in_propagation_ = false;
  return s.is_violation() ? Status::violation() : Status::ok();
}

bool PropagationContext::was_visited(const Variable& v) const {
  return visited_vars_.count(const_cast<Variable*>(&v)) != 0;
}

void PropagationContext::record_visited(Variable& v) {
  visited_vars_.try_emplace(&v, SavedState{v.value(), v.last_set_by(), 0});
}

bool PropagationContext::may_change_again(const Variable& v) const {
  const auto it = visited_vars_.find(const_cast<Variable*>(&v));
  if (it == visited_vars_.end()) return true;
  return it->second.changes < max_changes_per_variable_;
}

void PropagationContext::count_change(Variable& v) {
  auto it = visited_vars_.find(&v);
  if (it != visited_vars_.end()) ++it->second.changes;
}

void PropagationContext::mark_visited(Propagatable& c) {
  if (visited_constraint_set_.try_emplace(&c, true).second) {
    visited_constraints_.push_back(&c);
  }
}

void PropagationContext::restore_visited() {
  for (auto& [var, saved] : visited_vars_) {
    var->restore_state(saved.value, saved.justification);
    ++stats_.restores;
  }
}

Status PropagationContext::signal_violation(ViolationInfo info) {
  if (!last_violation_) last_violation_ = std::move(info);
  return Status::violation();
}

void PropagationContext::report_violation(const ViolationInfo& info) {
  violation_log_.push_back(info.to_string());
  if (violation_handler_) violation_handler_(info);
}

Status PropagationContext::drain_agendas() {
  while (auto entry = agenda_.pop_highest_priority()) {
    ++stats_.scheduled_runs;
    const Status s = entry->task->propagate_scheduled(entry->variable);
    if (s.is_violation()) return s;
  }
  return Status::ok();
}

Status PropagationContext::check_visited_constraints() {
  // The final sweep (thesis Fig 4.6): isSatisfied is sent to every visited
  // constraint.  Implicit-constraint scheduling may mark more constraints
  // visited while checking does not, so a simple index loop suffices.
  for (Propagatable* c : visited_constraints_) {
    ++stats_.checks;
    if (!c->is_satisfied()) {
      return signal_violation(
          {c, nullptr, Value::nil(),
           "constraint unsatisfied after propagation: " + c->describe()});
    }
  }
  return Status::ok();
}

}  // namespace stemcp::core
