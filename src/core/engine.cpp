#include "core/engine.h"

#include <algorithm>
#include <stdexcept>

#include "core/constraint.h"
#include "core/variable.h"

namespace stemcp::core {

PropagationContext::PropagationContext() : epoch_(next_global_stamp()) {
  agenda_.bind_instrumentation(
      &stats_.agenda_high_water, stats_.scheduled_by_priority.data(),
      stats_.executed_by_priority.data(), Stats::kTrackedPriorities, &tracer_,
      &metrics_);
}

PropagationContext::~PropagationContext() {
  // Fold this context's lifetime totals into the process-global registry so
  // benchmark binaries can emit one aggregate stats JSON per run (see
  // bench/bench_support.h).
  MetricsRegistry totals;
  totals.add_counter("ctx.contexts", 1);
  totals.add_counter("ctx.sessions", stats_.sessions);
  totals.add_counter("ctx.assignments", stats_.assignments);
  totals.add_counter("ctx.activations", stats_.activations);
  totals.add_counter("ctx.scheduled_runs", stats_.scheduled_runs);
  totals.add_counter("ctx.checks", stats_.checks);
  totals.add_counter("ctx.violations", stats_.violations);
  totals.add_counter("ctx.restores", stats_.restores);
  totals.histogram("ctx.agenda_high_water").record(stats_.agenda_high_water);
  for (std::size_t i = 0; i < Stats::kTrackedPriorities; ++i) {
    totals.add_counter("ctx.scheduled.p" + std::to_string(i),
                       stats_.scheduled_by_priority[i]);
    totals.add_counter("ctx.executed.p" + std::to_string(i),
                       stats_.executed_by_priority[i]);
  }
  totals.merge(metrics_);
  merge_into_global_metrics(totals);
}

std::vector<Constraint*> PropagationContext::all_constraints() const {
  std::vector<Constraint*> out;
  out.reserve(constraints_.size());
  for (const auto& c : constraints_) out.push_back(c.get());
  return out;
}

void PropagationContext::destroy_constraint(Constraint& c) {
  if (tracing()) {
    tracer_.emit(TraceEventType::kNetworkEdit, "destroy " + c.describe(), &c);
  }
  // Collect every variable whose value transitively depends on this
  // constraint, before breaking any link.
  DependencyTrace trace;
  for (Variable* arg : c.arguments()) {
    if (arg->last_set_by().constraint() == &c) arg->consequences(trace);
  }
  // Detach from all arguments.
  const auto args = c.arguments();
  for (Variable* arg : args) {
    c.detach_argument_raw(*arg);
    arg->detach(c);
  }
  // Erase the now-unjustified values.
  for (const Variable* v : trace.variables) {
    const_cast<Variable*>(v)->reset_raw();
  }
  auto it = std::find_if(
      constraints_.begin(), constraints_.end(),
      [&](const std::unique_ptr<Constraint>& p) { return p.get() == &c; });
  if (it == constraints_.end()) {
    throw std::logic_error("destroy_constraint: not owned by this context");
  }
  constraints_.erase(it);
}

Status PropagationContext::run_session_impl(Status (*invoke)(void*),
                                            void* body) {
  if (in_propagation_) {
    throw std::logic_error("nested propagation session");
  }
  in_propagation_ = true;
  ++stats_.sessions;
  // A fresh epoch invalidates every variable/constraint stamp at once — the
  // O(size) map clears of the old visited dictionary become O(1).
  epoch_ = next_global_stamp();
  trail_size_ = 0;
  visited_constraints_.clear();
  agenda_.clear();
  last_violation_.reset();

  if (tracing()) tracer_.emit(TraceEventType::kSessionBegin, "");

  Status s = invoke(body);
  if (s.is_ok()) s = drain_agendas();
  if (s.is_ok()) s = check_visited_constraints();

  if (s.is_violation()) {
    ++stats_.violations;
    if (last_violation_) {
      // Invoke the violated constraint's handler (thesis §4.2.3); the
      // default reports through the context.
      auto* source = const_cast<Propagatable*>(last_violation_->constraint);
      if (source != nullptr) {
        source->on_violation(*last_violation_, *this);
      } else {
        report_violation(*last_violation_);
      }
    }
    restore_visited();
  }
  in_propagation_ = false;

  if (tracing()) {
    tracer_.emit(TraceEventType::kSessionEnd,
                 s.is_violation() ? "violation" : "ok");
  }
  return s.is_violation() ? Status::violation() : Status::ok();
}

bool PropagationContext::was_visited(const Variable& v) const {
  return v.visit_epoch_ == epoch_;
}

void PropagationContext::record_visited(Variable& v) {
  if (v.visit_epoch_ == epoch_) return;  // putIfAbsent
  v.visit_epoch_ = epoch_;
  v.session_changes_ = 0;
  // Reuse a retired trail slot when one exists: assigning into the old
  // Value/Justification keeps their heap capacity warm, so steady-state
  // sessions do not allocate here.
  if (trail_size_ < trail_.size()) {
    TrailEntry& slot = trail_[trail_size_];
    slot.var = &v;
    slot.value = v.value();
    slot.justification = v.last_set_by();
  } else {
    trail_.push_back(TrailEntry{&v, v.value(), v.last_set_by()});
  }
  ++trail_size_;
}

bool PropagationContext::may_change_again(const Variable& v) const {
  if (v.visit_epoch_ != epoch_) return true;
  return v.session_changes_ < max_changes_per_variable_;
}

void PropagationContext::count_change(Variable& v) {
  if (v.visit_epoch_ == epoch_) ++v.session_changes_;
}

void PropagationContext::mark_visited(Propagatable& c) {
  if (c.visit_epoch_ == epoch_) return;
  c.visit_epoch_ = epoch_;
  visited_constraints_.push_back(&c);
}

void PropagationContext::restore_visited() {
  const bool traced = tracing();
  for (std::size_t i = 0; i < trail_size_; ++i) {
    TrailEntry& slot = trail_[i];
    if (traced) {
      tracer_.emit(TraceEventType::kRestore, slot.var->path(), slot.var);
    }
    slot.var->restore_state(slot.value, slot.justification);
    ++stats_.restores;
  }
}

std::vector<Propagatable*>& PropagationContext::borrow_fanout_scratch() {
  if (fanout_depth_ == fanout_pool_.size()) {
    fanout_pool_.push_back(std::make_unique<std::vector<Propagatable*>>());
  }
  return *fanout_pool_[fanout_depth_++];
}

void PropagationContext::release_fanout_scratch() { --fanout_depth_; }

Status PropagationContext::signal_violation(ViolationInfo info) {
  if (!last_violation_) {
    if (tracing()) {
      tracer_.emit(TraceEventType::kViolation, info.message,
                   info.constraint);
    }
    last_violation_ = std::move(info);
  }
  return Status::violation();
}

void PropagationContext::report_violation(const ViolationInfo& info) {
  violation_log_.push_back(info.to_string());
  while (violation_log_.size() > violation_log_limit_) {
    violation_log_.pop_front();
    ++violation_log_dropped_;
  }
  if (violation_handler_) violation_handler_(info);
}

void PropagationContext::set_violation_log_limit(std::size_t limit) {
  violation_log_limit_ = limit < 1 ? 1 : limit;
  while (violation_log_.size() > violation_log_limit_) {
    violation_log_.pop_front();
    ++violation_log_dropped_;
  }
}

Status PropagationContext::drain_agendas() {
  while (auto entry = agenda_.pop_highest_priority()) {
    ++stats_.scheduled_runs;
    if (observing()) {
      const std::size_t pri = agenda_.last_popped_priority();
      const std::uint64_t t0 = Tracer::now_ns();
      const Status s = entry->task->propagate_scheduled(entry->variable);
      const std::uint64_t dt = Tracer::now_ns() - t0;
      if (tracing()) {
        tracer_.emit(TraceEventType::kAgendaPop, entry->task->describe(),
                     entry->task, dt,
                     static_cast<std::uint8_t>(std::min<std::size_t>(pri,
                                                                     255)));
      }
      if (metrics_.enabled()) {
        Propagatable& task = *entry->task;
        if (task.run_hist_ == nullptr ||
            task.run_hist_gen_ != metrics_.generation()) {
          task.run_hist_ =
              metrics_.histogram_handle("run_ns." + task.type_name());
          task.run_hist_gen_ = metrics_.generation();
        }
        task.run_hist_->record(dt);
      }
      if (s.is_violation()) return s;
    } else {
      const Status s = entry->task->propagate_scheduled(entry->variable);
      if (s.is_violation()) return s;
    }
  }
  return Status::ok();
}

Status PropagationContext::check_visited_constraints() {
  // The final sweep (thesis Fig 4.6): isSatisfied is sent to every visited
  // constraint.  Implicit-constraint scheduling may mark more constraints
  // visited while checking does not, so a simple index loop suffices.
  const bool observed = observing();
  for (std::size_t i = 0; i < visited_constraints_.size(); ++i) {
    Propagatable* c = visited_constraints_[i];
    ++stats_.checks;
    bool ok;
    if (observed) {
      const std::uint64_t t0 = Tracer::now_ns();
      ok = c->is_satisfied();
      const std::uint64_t dt = Tracer::now_ns() - t0;
      if (tracing()) {
        tracer_.emit(TraceEventType::kCheck, c->describe(), c, dt);
      }
      if (metrics_.enabled()) {
        if (c->check_hist_ == nullptr ||
            c->check_hist_gen_ != metrics_.generation()) {
          c->check_hist_ =
              metrics_.histogram_handle("check_ns." + c->type_name());
          c->check_hist_gen_ = metrics_.generation();
        }
        c->check_hist_->record(dt);
      }
    } else {
      ok = c->is_satisfied();
    }
    if (!ok) {
      return signal_violation(
          {c, nullptr, Value::nil(),
           "constraint unsatisfied after propagation: " + c->describe()});
    }
  }
  return Status::ok();
}

}  // namespace stemcp::core
