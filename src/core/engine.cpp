#include "core/engine.h"

#include <algorithm>
#include <stdexcept>

#include "core/constraint.h"
#include "core/variable.h"

namespace stemcp::core {

PropagationContext::PropagationContext() {
  agenda_.bind_instrumentation(
      &stats_.agenda_high_water, stats_.scheduled_by_priority.data(),
      stats_.executed_by_priority.data(), Stats::kTrackedPriorities, &tracer_,
      &metrics_);
}

PropagationContext::~PropagationContext() {
  // Fold this context's lifetime totals into the process-global registry so
  // benchmark binaries can emit one aggregate stats JSON per run (see
  // bench/bench_support.h).
  MetricsRegistry totals;
  totals.add_counter("ctx.contexts", 1);
  totals.add_counter("ctx.sessions", stats_.sessions);
  totals.add_counter("ctx.assignments", stats_.assignments);
  totals.add_counter("ctx.activations", stats_.activations);
  totals.add_counter("ctx.scheduled_runs", stats_.scheduled_runs);
  totals.add_counter("ctx.checks", stats_.checks);
  totals.add_counter("ctx.violations", stats_.violations);
  totals.add_counter("ctx.restores", stats_.restores);
  totals.histogram("ctx.agenda_high_water").record(stats_.agenda_high_water);
  for (std::size_t i = 0; i < Stats::kTrackedPriorities; ++i) {
    totals.add_counter("ctx.scheduled.p" + std::to_string(i),
                       stats_.scheduled_by_priority[i]);
    totals.add_counter("ctx.executed.p" + std::to_string(i),
                       stats_.executed_by_priority[i]);
  }
  totals.merge(metrics_);
  merge_into_global_metrics(totals);
}

std::vector<Constraint*> PropagationContext::all_constraints() const {
  std::vector<Constraint*> out;
  out.reserve(constraints_.size());
  for (const auto& c : constraints_) out.push_back(c.get());
  return out;
}

void PropagationContext::destroy_constraint(Constraint& c) {
  if (tracing()) {
    tracer_.emit(TraceEventType::kNetworkEdit, "destroy " + c.describe(), &c);
  }
  // Collect every variable whose value transitively depends on this
  // constraint, before breaking any link.
  DependencyTrace trace;
  for (Variable* arg : c.arguments()) {
    if (arg->last_set_by().constraint() == &c) arg->consequences(trace);
  }
  // Detach from all arguments.
  const auto args = c.arguments();
  for (Variable* arg : args) {
    c.detach_argument_raw(*arg);
    arg->detach(c);
  }
  // Erase the now-unjustified values.
  for (const Variable* v : trace.variables) {
    const_cast<Variable*>(v)->reset_raw();
  }
  auto it = std::find_if(
      constraints_.begin(), constraints_.end(),
      [&](const std::unique_ptr<Constraint>& p) { return p.get() == &c; });
  if (it == constraints_.end()) {
    throw std::logic_error("destroy_constraint: not owned by this context");
  }
  constraints_.erase(it);
}

Status PropagationContext::run_session(const std::function<Status()>& body) {
  if (in_propagation_) {
    throw std::logic_error("nested propagation session");
  }
  in_propagation_ = true;
  ++stats_.sessions;
  visited_vars_.clear();
  visited_constraint_set_.clear();
  visited_constraints_.clear();
  agenda_.clear();
  last_violation_.reset();

  if (tracing()) tracer_.emit(TraceEventType::kSessionBegin, "");

  Status s = body();
  if (s.is_ok()) s = drain_agendas();
  if (s.is_ok()) s = check_visited_constraints();

  if (s.is_violation()) {
    ++stats_.violations;
    if (last_violation_) {
      // Invoke the violated constraint's handler (thesis §4.2.3); the
      // default reports through the context.
      auto* source = const_cast<Propagatable*>(last_violation_->constraint);
      if (source != nullptr) {
        source->on_violation(*last_violation_, *this);
      } else {
        report_violation(*last_violation_);
      }
    }
    restore_visited();
  }
  in_propagation_ = false;

  if (tracing()) {
    tracer_.emit(TraceEventType::kSessionEnd,
                 s.is_violation() ? "violation" : "ok");
  }
  return s.is_violation() ? Status::violation() : Status::ok();
}

bool PropagationContext::was_visited(const Variable& v) const {
  return visited_vars_.count(const_cast<Variable*>(&v)) != 0;
}

void PropagationContext::record_visited(Variable& v) {
  visited_vars_.try_emplace(&v, SavedState{v.value(), v.last_set_by(), 0});
}

bool PropagationContext::may_change_again(const Variable& v) const {
  const auto it = visited_vars_.find(const_cast<Variable*>(&v));
  if (it == visited_vars_.end()) return true;
  return it->second.changes < max_changes_per_variable_;
}

void PropagationContext::count_change(Variable& v) {
  auto it = visited_vars_.find(&v);
  if (it != visited_vars_.end()) ++it->second.changes;
}

void PropagationContext::mark_visited(Propagatable& c) {
  if (visited_constraint_set_.try_emplace(&c, true).second) {
    visited_constraints_.push_back(&c);
  }
}

void PropagationContext::restore_visited() {
  const bool traced = tracing();
  for (auto& [var, saved] : visited_vars_) {
    if (traced) {
      tracer_.emit(TraceEventType::kRestore, var->path(), var);
    }
    var->restore_state(saved.value, saved.justification);
    ++stats_.restores;
  }
}

Status PropagationContext::signal_violation(ViolationInfo info) {
  if (!last_violation_) {
    if (tracing()) {
      tracer_.emit(TraceEventType::kViolation, info.message,
                   info.constraint);
    }
    last_violation_ = std::move(info);
  }
  return Status::violation();
}

void PropagationContext::report_violation(const ViolationInfo& info) {
  violation_log_.push_back(info.to_string());
  if (violation_log_.size() > violation_log_limit_) {
    const std::size_t excess = violation_log_.size() - violation_log_limit_;
    violation_log_.erase(violation_log_.begin(),
                         violation_log_.begin() +
                             static_cast<std::ptrdiff_t>(excess));
    violation_log_dropped_ += excess;
  }
  if (violation_handler_) violation_handler_(info);
}

void PropagationContext::set_violation_log_limit(std::size_t limit) {
  violation_log_limit_ = limit < 1 ? 1 : limit;
  if (violation_log_.size() > violation_log_limit_) {
    const std::size_t excess = violation_log_.size() - violation_log_limit_;
    violation_log_.erase(violation_log_.begin(),
                         violation_log_.begin() +
                             static_cast<std::ptrdiff_t>(excess));
    violation_log_dropped_ += excess;
  }
}

Status PropagationContext::drain_agendas() {
  while (auto entry = agenda_.pop_highest_priority()) {
    ++stats_.scheduled_runs;
    if (observing()) {
      const std::size_t pri = agenda_.last_popped_priority();
      const std::uint64_t t0 = Tracer::now_ns();
      const Status s = entry->task->propagate_scheduled(entry->variable);
      const std::uint64_t dt = Tracer::now_ns() - t0;
      if (tracing()) {
        tracer_.emit(TraceEventType::kAgendaPop, entry->task->describe(),
                     entry->task, dt,
                     static_cast<std::uint8_t>(std::min<std::size_t>(pri,
                                                                     255)));
      }
      if (metrics_.enabled()) {
        metrics_.histogram("run_ns." + entry->task->type_name()).record(dt);
      }
      if (s.is_violation()) return s;
    } else {
      const Status s = entry->task->propagate_scheduled(entry->variable);
      if (s.is_violation()) return s;
    }
  }
  return Status::ok();
}

Status PropagationContext::check_visited_constraints() {
  // The final sweep (thesis Fig 4.6): isSatisfied is sent to every visited
  // constraint.  Implicit-constraint scheduling may mark more constraints
  // visited while checking does not, so a simple index loop suffices.
  const bool observed = observing();
  for (Propagatable* c : visited_constraints_) {
    ++stats_.checks;
    bool ok;
    if (observed) {
      const std::uint64_t t0 = Tracer::now_ns();
      ok = c->is_satisfied();
      const std::uint64_t dt = Tracer::now_ns() - t0;
      if (tracing()) {
        tracer_.emit(TraceEventType::kCheck, c->describe(), c, dt);
      }
      if (metrics_.enabled()) {
        metrics_.histogram("check_ns." + c->type_name()).record(dt);
      }
    } else {
      ok = c->is_satisfied();
    }
    if (!ok) {
      return signal_violation(
          {c, nullptr, Value::nil(),
           "constraint unsatisfied after propagation: " + c->describe()});
    }
  }
  return Status::ok();
}

}  // namespace stemcp::core
