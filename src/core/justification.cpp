#include "core/justification.h"

#include "core/propagatable.h"

namespace stemcp::core {

const char* to_string(Source s) {
  switch (s) {
    case Source::kNone: return "#NONE";
    case Source::kUser: return "#USER";
    case Source::kApplication: return "#APPLICATION";
    case Source::kUpdate: return "#UPDATE";
    case Source::kDefault: return "#DEFAULT";
    case Source::kTentative: return "#TENTATIVE";
    case Source::kPropagated: return "#PROPAGATED";
  }
  return "?";
}

const char* to_string(Strength s) {
  switch (s) {
    case Strength::kWeak: return "weak";
    case Strength::kNormal: return "normal";
    case Strength::kStrong: return "strong";
  }
  return "?";
}

std::string Justification::to_string() const {
  if (!is_propagated()) return core::to_string(source_);
  std::string s = "propagated by ";
  s += constraint_ != nullptr ? constraint_->describe() : "?";
  return s;
}

}  // namespace stemcp::core
