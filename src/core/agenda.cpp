#include "core/agenda.h"

#include <algorithm>

#include "core/propagatable.h"
#include "core/trace.h"

namespace stemcp::core {

AgendaScheduler::AgendaScheduler()
    : epoch_(next_global_stamp()), generation_(next_global_stamp()) {
  // Deviation from thesis §5.1.2, which puts #implicitConstraints at the
  // LOWEST priority: that ordering lets a functional constraint recompute
  // between the implicit updates of its own inputs, so re-characterizing a
  // cell that appears k times along one delay path changes the path sum k
  // times — tripping the one-value-change rule the thesis also prescribes.
  // Draining the implicit agenda FIRST lets every dual of a changed class
  // variable settle before dependent functional constraints run, and each
  // variable changes exactly once per session on tree-structured networks.
  // See EXPERIMENTS.md, deviation 6.
  set_priority_order({kImplicitConstraintsAgenda,
                      kFunctionalConstraintsAgenda});
}

void AgendaScheduler::set_priority_order(std::vector<std::string> names) {
  order_ = std::move(names);
  queues_.clear();
  queues_.reserve(order_.size());
  for (const auto& n : order_) queues_.push_back(Queue{n, {}, 0});
  // Every interned id and every queued-entry stamp is now stale.
  generation_ = next_global_stamp();
  epoch_ = next_global_stamp();
}

AgendaScheduler::AgendaId AgendaScheduler::intern(std::string_view name) {
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i].name == name) return static_cast<AgendaId>(i);
  }
  // Unknown agendas are appended at the lowest priority.  Existing ids keep
  // their meaning, so the generation does not move.
  order_.emplace_back(name);
  queues_.push_back(Queue{std::string(name), {}, 0});
  return static_cast<AgendaId>(queues_.size() - 1);
}

void AgendaScheduler::bind_instrumentation(std::uint64_t* high_water,
                                           std::uint64_t* scheduled_by_priority,
                                           std::uint64_t* executed_by_priority,
                                           std::size_t tracked_priorities,
                                           Tracer* tracer,
                                           MetricsRegistry* metrics) {
  high_water_ = high_water;
  scheduled_ = scheduled_by_priority;
  executed_ = executed_by_priority;
  tracked_priorities_ = tracked_priorities;
  tracer_ = tracer;
  metrics_ = metrics;
  for (Queue& q : queues_) {
    q.depth_hist = nullptr;
    q.depth_hist_gen = 0;
  }
}

bool AgendaScheduler::schedule_cached(Propagatable& task, const char* name,
                                      Variable* variable) {
  if (task.agenda_cache_gen_ != generation_ ||
      task.agenda_cache_name_ != name) {
    task.agenda_cache_id_ = intern(name);
    task.agenda_cache_gen_ = generation_;
    task.agenda_cache_name_ = name;
  }
  return schedule(task.agenda_cache_id_, task, variable);
}

bool AgendaScheduler::schedule(AgendaId agenda, Propagatable& task,
                               Variable* variable) {
  const std::size_t pri = agenda;
  Queue& q = queues_[pri];
  // Duplicate suppression without a per-queue set: the task carries the
  // (queue, variable) pairs currently queued for it, valid only while its
  // stamp matches this scheduler's epoch.
  if (task.sched_epoch_ != epoch_) {
    task.sched_epoch_ = epoch_;
    task.queued_.clear();
  } else {
    for (const auto& [qid, var] : task.queued_) {
      if (qid == agenda && var == variable) return false;
    }
  }
  task.queued_.emplace_back(agenda, variable);
  q.fifo.push_back(Entry{&task, variable});

  // Always-on queue-pressure accounting (cheap: two compares, one store).
  if (scheduled_ != nullptr && tracked_priorities_ > 0) {
    ++scheduled_[std::min(pri, tracked_priorities_ - 1)];
  }
  if (high_water_ != nullptr) {
    const std::size_t depth = size();
    if (depth > *high_water_) *high_water_ = depth;
  }

  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->emit(TraceEventType::kAgendaSchedule, task.describe(), &task, 0,
                  static_cast<std::uint8_t>(std::min<std::size_t>(pri, 255)));
  }
  if (metrics_ != nullptr && metrics_->enabled()) {
    if (q.depth_hist == nullptr ||
        q.depth_hist_gen != metrics_->generation()) {
      q.depth_hist =
          metrics_->histogram_handle("agenda_depth.p" + std::to_string(pri));
      q.depth_hist_gen = metrics_->generation();
    }
    q.depth_hist->record(size());
  }
  return true;
}

std::optional<AgendaScheduler::Entry> AgendaScheduler::pop_highest_priority() {
  for (std::size_t pri = 0; pri < queues_.size(); ++pri) {
    Queue& q = queues_[pri];
    if (q.empty()) continue;
    Entry e = q.fifo[q.head++];
    // Un-mark the popped entry so the task may be re-scheduled within the
    // same session (swap-remove; FIFO order lives in q.fifo, not here).
    if (e.task->sched_epoch_ == epoch_) {
      auto& queued = e.task->queued_;
      for (auto it = queued.begin(); it != queued.end(); ++it) {
        if (it->first == pri && it->second == e.variable) {
          *it = queued.back();
          queued.pop_back();
          break;
        }
      }
    }
    if (q.empty()) {
      q.fifo.clear();
      q.head = 0;
    }
    last_popped_priority_ = pri;
    if (executed_ != nullptr && tracked_priorities_ > 0) {
      ++executed_[std::min(pri, tracked_priorities_ - 1)];
    }
    return e;
  }
  return std::nullopt;
}

bool AgendaScheduler::empty() const {
  return std::all_of(queues_.begin(), queues_.end(),
                     [](const Queue& q) { return q.empty(); });
}

std::size_t AgendaScheduler::size() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.fifo.size() - q.head;
  return n;
}

void AgendaScheduler::clear() {
  for (auto& q : queues_) {
    q.fifo.clear();
    q.head = 0;
  }
  // One stamp invalidates every task's queued-entry list at once.
  epoch_ = next_global_stamp();
}

}  // namespace stemcp::core
