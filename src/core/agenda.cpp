#include "core/agenda.h"

#include <algorithm>

#include "core/propagatable.h"
#include "core/trace.h"

namespace stemcp::core {

AgendaScheduler::AgendaScheduler() {
  // Deviation from thesis §5.1.2, which puts #implicitConstraints at the
  // LOWEST priority: that ordering lets a functional constraint recompute
  // between the implicit updates of its own inputs, so re-characterizing a
  // cell that appears k times along one delay path changes the path sum k
  // times — tripping the one-value-change rule the thesis also prescribes.
  // Draining the implicit agenda FIRST lets every dual of a changed class
  // variable settle before dependent functional constraints run, and each
  // variable changes exactly once per session on tree-structured networks.
  // See EXPERIMENTS.md, deviation 6.
  set_priority_order({kImplicitConstraintsAgenda,
                      kFunctionalConstraintsAgenda});
}

void AgendaScheduler::set_priority_order(std::vector<std::string> names) {
  order_ = std::move(names);
  queues_.clear();
  queues_.reserve(order_.size());
  for (const auto& n : order_) queues_.push_back(Queue{n, {}, 0, {}});
}

std::size_t AgendaScheduler::queue_index(const std::string& name) {
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i].name == name) return i;
  }
  // Unknown agendas are appended at the lowest priority.
  order_.push_back(name);
  queues_.push_back(Queue{name, {}, 0, {}});
  return queues_.size() - 1;
}

void AgendaScheduler::bind_instrumentation(std::uint64_t* high_water,
                                           std::uint64_t* scheduled_by_priority,
                                           std::uint64_t* executed_by_priority,
                                           std::size_t tracked_priorities,
                                           Tracer* tracer,
                                           MetricsRegistry* metrics) {
  high_water_ = high_water;
  scheduled_ = scheduled_by_priority;
  executed_ = executed_by_priority;
  tracked_priorities_ = tracked_priorities;
  tracer_ = tracer;
  metrics_ = metrics;
}

bool AgendaScheduler::schedule(const std::string& agenda, Propagatable& task,
                               Variable* variable) {
  const std::size_t pri = queue_index(agenda);
  Queue& q = queues_[pri];
  const Entry e{&task, variable};
  if (!q.members.insert(e).second) return false;  // duplicate suppression
  q.fifo.push_back(e);

  // Always-on queue-pressure accounting (cheap: two compares, one store).
  if (scheduled_ != nullptr && tracked_priorities_ > 0) {
    ++scheduled_[std::min(pri, tracked_priorities_ - 1)];
  }
  if (high_water_ != nullptr) {
    const std::size_t depth = size();
    if (depth > *high_water_) *high_water_ = depth;
  }

  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->emit(TraceEventType::kAgendaSchedule, task.describe(), &task, 0,
                  static_cast<std::uint8_t>(std::min<std::size_t>(pri, 255)));
  }
  if (metrics_ != nullptr && metrics_->enabled()) {
    metrics_->histogram("agenda_depth.p" + std::to_string(pri)).record(size());
  }
  return true;
}

std::optional<AgendaScheduler::Entry> AgendaScheduler::pop_highest_priority() {
  for (std::size_t pri = 0; pri < queues_.size(); ++pri) {
    Queue& q = queues_[pri];
    if (q.empty()) continue;
    Entry e = q.fifo[q.head++];
    q.members.erase(e);
    if (q.empty()) {
      q.fifo.clear();
      q.head = 0;
    }
    last_popped_priority_ = pri;
    if (executed_ != nullptr && tracked_priorities_ > 0) {
      ++executed_[std::min(pri, tracked_priorities_ - 1)];
    }
    return e;
  }
  return std::nullopt;
}

bool AgendaScheduler::empty() const {
  return std::all_of(queues_.begin(), queues_.end(),
                     [](const Queue& q) { return q.empty(); });
}

std::size_t AgendaScheduler::size() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.fifo.size() - q.head;
  return n;
}

void AgendaScheduler::clear() {
  for (auto& q : queues_) {
    q.fifo.clear();
    q.head = 0;
    q.members.clear();
  }
}

}  // namespace stemcp::core
