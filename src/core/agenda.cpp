#include "core/agenda.h"

#include <algorithm>

namespace stemcp::core {

AgendaScheduler::AgendaScheduler() {
  // Deviation from thesis §5.1.2, which puts #implicitConstraints at the
  // LOWEST priority: that ordering lets a functional constraint recompute
  // between the implicit updates of its own inputs, so re-characterizing a
  // cell that appears k times along one delay path changes the path sum k
  // times — tripping the one-value-change rule the thesis also prescribes.
  // Draining the implicit agenda FIRST lets every dual of a changed class
  // variable settle before dependent functional constraints run, and each
  // variable changes exactly once per session on tree-structured networks.
  // See EXPERIMENTS.md, deviation 6.
  set_priority_order({kImplicitConstraintsAgenda,
                      kFunctionalConstraintsAgenda});
}

void AgendaScheduler::set_priority_order(std::vector<std::string> names) {
  order_ = std::move(names);
  queues_.clear();
  queues_.reserve(order_.size());
  for (const auto& n : order_) queues_.push_back(Queue{n, {}, 0, {}});
}

AgendaScheduler::Queue& AgendaScheduler::queue_named(const std::string& name) {
  for (auto& q : queues_) {
    if (q.name == name) return q;
  }
  // Unknown agendas are appended at the lowest priority.
  order_.push_back(name);
  queues_.push_back(Queue{name, {}, 0, {}});
  return queues_.back();
}

bool AgendaScheduler::schedule(const std::string& agenda, Propagatable& task,
                               Variable* variable) {
  Queue& q = queue_named(agenda);
  const Entry e{&task, variable};
  if (!q.members.insert(e).second) return false;  // duplicate suppression
  q.fifo.push_back(e);
  return true;
}

std::optional<AgendaScheduler::Entry> AgendaScheduler::pop_highest_priority() {
  for (auto& q : queues_) {
    if (q.empty()) continue;
    Entry e = q.fifo[q.head++];
    q.members.erase(e);
    if (q.empty()) {
      q.fifo.clear();
      q.head = 0;
    }
    return e;
  }
  return std::nullopt;
}

bool AgendaScheduler::empty() const {
  return std::all_of(queues_.begin(), queues_.end(),
                     [](const Queue& q) { return q.empty(); });
}

std::size_t AgendaScheduler::size() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.fifo.size() - q.head;
  return n;
}

void AgendaScheduler::clear() {
  for (auto& q : queues_) {
    q.fifo.clear();
    q.head = 0;
    q.members.clear();
  }
}

}  // namespace stemcp::core
