// Umbrella header for the stemcp constraint-propagation core.
#pragma once

#include "core/agenda.h"
#include "core/compiled.h"
#include "core/constraint.h"
#include "core/constraints/equality.h"
#include "core/constraints/functional.h"
#include "core/constraints/predicate.h"
#include "core/constraints/update.h"
#include "core/engine.h"
#include "core/geometry.h"
#include "core/justification.h"
#include "core/propagatable.h"
#include "core/relaxation.h"
#include "core/status.h"
#include "core/trace.h"
#include "core/value.h"
#include "core/variable.h"
