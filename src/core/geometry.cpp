#include "core/geometry.h"

#include <stdexcept>

namespace stemcp::core {

std::string Rect::to_string() const {
  if (empty()) return "[empty]";
  return "[" + std::to_string(x0) + "," + std::to_string(y0) + " " +
         std::to_string(x1) + "," + std::to_string(y1) + "]";
}

const char* to_string(Orientation o) {
  switch (o) {
    case Orientation::kR0: return "R0";
    case Orientation::kR90: return "R90";
    case Orientation::kR180: return "R180";
    case Orientation::kR270: return "R270";
    case Orientation::kMX: return "MX";
    case Orientation::kMY: return "MY";
    case Orientation::kMXR90: return "MXR90";
    case Orientation::kMYR90: return "MYR90";
  }
  return "?";
}

namespace {

Point orient_point(Orientation o, Point p) {
  switch (o) {
    case Orientation::kR0: return {p.x, p.y};
    case Orientation::kR90: return {-p.y, p.x};
    case Orientation::kR180: return {-p.x, -p.y};
    case Orientation::kR270: return {p.y, -p.x};
    case Orientation::kMX: return {p.x, -p.y};
    case Orientation::kMY: return {-p.x, p.y};
    case Orientation::kMXR90: return {p.y, p.x};    // MX then R90
    case Orientation::kMYR90: return {-p.y, -p.x};  // MY then R90
  }
  return p;
}

// Composition table: result of applying `a` then `b` (orientations only).
Orientation compose(Orientation a, Orientation b) {
  // Represent each orientation by its action on the basis vectors and search
  // the table for the match; eight entries keep this exact and branch-free
  // enough for placement-heavy loops.
  const Point ex = orient_point(b, orient_point(a, {1, 0}));
  const Point ey = orient_point(b, orient_point(a, {0, 1}));
  for (int i = 0; i < 8; ++i) {
    auto o = static_cast<Orientation>(i);
    if (orient_point(o, {1, 0}) == ex && orient_point(o, {0, 1}) == ey) {
      return o;
    }
  }
  throw std::logic_error("orientation composition not closed");
}

Orientation invert(Orientation a) {
  for (int i = 0; i < 8; ++i) {
    auto o = static_cast<Orientation>(i);
    if (compose(a, o) == Orientation::kR0) return o;
  }
  throw std::logic_error("orientation has no inverse");
}

}  // namespace

Point Transform::apply(Point p) const { return orient_point(orient_, p) + t_; }

Rect Transform::apply(const Rect& r) const {
  if (r.empty()) return r;
  const Point a = apply(Point{r.x0, r.y0});
  const Point b = apply(Point{r.x1, r.y1});
  return {std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
          std::max(a.y, b.y)};
}

Transform Transform::then(const Transform& other) const {
  return {compose(orient_, other.orientation()), other.apply(t_)};
}

Transform Transform::inverse() const {
  const Orientation io = invert(orient_);
  return {io, orient_point(io, Point{-t_.x, -t_.y})};
}

std::string Transform::to_string() const {
  return std::string(core::to_string(orient_)) + "+(" + std::to_string(t_.x) +
         "," + std::to_string(t_.y) + ")";
}

}  // namespace stemcp::core
