// Compiled constraint networks (thesis §9.3, future work #3).
//
// A network of unidirectional functional constraints forms a DAG from
// inputs to results.  Compiling it means topologically sorting the
// constraints once; evaluation then runs straight down the order with no
// agenda, no visited bookkeeping and no per-assignment fan-out — the
// "complete proceduralization" end of the thesis's declarative/procedural
// trade-off.  Check-only constraints attached to the written variables are
// still evaluated after the sweep.
//
// Compiled evaluation is batch-mode: values are committed directly (with
// propagated justifications, so dependency analysis keeps working), and a
// reported violation does NOT restore previous values — use the
// interpreted engine when transactional behaviour matters.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/constraints/functional.h"

namespace stemcp::core {

class CompiledNetwork {
 public:
  /// Topologically sort the given functional constraints (edge: producer's
  /// result feeds consumer's input).  Returns nullopt if the network is
  /// cyclic — such networks need the interpreted engine's cycle detection.
  static std::optional<CompiledNetwork> compile(
      PropagationContext& ctx, std::vector<FunctionalConstraint*> constraints);

  /// Evaluate every constraint in dependency order, then run isSatisfied on
  /// all attached check constraints.  Returns a violation status (values
  /// stay committed) if any check fails.
  Status evaluate();

  /// The evaluation order (for inspection/testing).
  const std::vector<FunctionalConstraint*>& order() const { return order_; }
  /// Check constraints that guard the written variables.
  const std::vector<Propagatable*>& checks() const { return checks_; }

 private:
  CompiledNetwork(PropagationContext& ctx,
                  std::vector<FunctionalConstraint*> order);

  PropagationContext* ctx_;
  std::vector<FunctionalConstraint*> order_;
  std::vector<Propagatable*> checks_;
};

}  // namespace stemcp::core
