// Variable objects (thesis §4.1.1): active storage handles that constraints
// reference independently of their values.  Each has a parent, a name, a
// value, a constraint list, and a lastSetBy justification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/justification.h"
#include "core/propagatable.h"
#include "core/status.h"
#include "core/value.h"

namespace stemcp::core {

class Constraint;
class PropagationContext;

class Variable {
 public:
  /// `parent_name` identifies the containing design object (e.g. "ADDER"),
  /// `name` the field within it ("boundingBox"); together they form the
  /// unique identification path of the thesis.
  Variable(PropagationContext& ctx, std::string parent_name, std::string name);
  virtual ~Variable();

  Variable(const Variable&) = delete;
  Variable& operator=(const Variable&) = delete;

  PropagationContext& context() const { return ctx_; }
  const std::string& parent_name() const { return parent_; }
  const std::string& name() const { return name_; }
  std::string path() const { return parent_ + "." + name_; }

  const Value& value() const { return value_; }
  bool has_value() const { return !value_.is_nil(); }
  const Justification& last_set_by() const { return last_set_by_; }
  bool is_dependent() const { return last_set_by_.is_propagated(); }

  const std::vector<Propagatable*>& constraints() const {
    return constraints_;
  }

  /// `setTo:justification:` — external assignment; triggers a full
  /// propagation session (initial DFS, agenda drain, final isSatisfied sweep).
  /// Returns violation status; on violation the network is restored.
  Status set(Value v, Justification j);

  /// Convenience wrappers for the common external sources.
  Status set_user(Value v) { return set(std::move(v), Justification::user()); }
  Status set_application(Value v) {
    return set(std::move(v), Justification::application());
  }

  /// External assignment inside an already-open run_session (batched
  /// requests): identical to set() except the caller owns the session, so
  /// many #USER assignments coalesce into one propagation wave, one agenda
  /// drain and one final isSatisfied sweep.  Throws std::logic_error when no
  /// session is open; with the CPSwitch off it degrades to a plain store
  /// like set().
  Status set_in_session(Value v, Justification j);

  /// `setTo:constraint:justification:` — assignment by a constraint during
  /// propagation.  Applies the termination criteria (§4.2.2), the
  /// one-value-change rule, and the overwrite precedence, then propagates to
  /// every constraint except `source`.
  Status set_from_constraint(Value v, Propagatable& source, Justification j);

  /// `canBeSetTo:` (thesis Fig 8.2) — tentatively assign, propagate, then
  /// restore regardless of outcome; true iff no violation occurred.
  bool can_be_set_to(Value v);

  /// Erase the value without any propagation (dependency-directed erasure,
  /// thesis Fig 4.14).  Subclasses may react via on_reset().
  void reset_raw();

  /// Procedural update-constraint helper: erase this variable's value from
  /// inside or outside a propagation session (thesis Fig 7.8's
  /// `setTo:nil justification:#UPDATE`).
  Status erase_for_update(Propagatable& source);

  /// Overwrite precedence (thesis §4.2.4): may `incoming` replace the current
  /// value with `v`?  Default: #USER values outrank propagated/calculated
  /// ones.  Signal-type and bounding-box variables refine this.
  virtual bool can_change_value_to(const Value& v,
                                   const Justification& incoming) const;

  /// Implicit constraints attached to this variable (thesis §5.1.1) — the
  /// dual variables in the other half of the class/instance declaration.
  /// They receive propagateVariable: exactly like explicit constraints.
  virtual std::vector<Propagatable*> implicit_constraints() const {
    return {};
  }

  /// Dependency analysis (thesis Fig 4.11/4.12).
  void antecedents(DependencyTrace& out) const;
  void consequences(DependencyTrace& out) const;
  DependencyTrace antecedents() const;
  DependencyTrace consequences() const;

  /// `addConstraint:` / `removeConstraint:` (thesis §4.2.5).  Addition
  /// re-propagates the constraint's arguments in precedence order; removal
  /// erases all dependent values, then re-propagates the remainder.
  Status add_constraint(Constraint& c);
  void remove_constraint(Constraint& c);

  /// `propagateAlongConstraint:` — push this variable's value through a
  /// single constraint and drain the agendas (used by network editing).
  Status propagate_along(Propagatable& c);

  std::string to_string() const;

 protected:
  friend class PropagationContext;
  friend class Constraint;
  friend class CompiledNetwork;

  /// Raw state plumbing used by the engine for visited-state capture and
  /// restore; bypasses all propagation.
  void restore_state(Value v, Justification j);

  /// Hook invoked after a successful value change inside a propagation
  /// session, before fan-out (used e.g. by instance bounding boxes to reset
  /// the parent cell's class box procedurally — thesis Fig 7.8).  A returned
  /// violation aborts the session like any other.
  virtual Status after_value_change(const Justification& j);

  /// Hook invoked by reset_raw().
  virtual void on_reset() {}

  /// Fan out propagateVariable: to all explicit then implicit constraints,
  /// skipping `except` (the source of the value, if any).
  Status propagate_to_constraints(Propagatable* except);

 private:
  /// Shared body of set() and set_in_session(): record visited state,
  /// assign, run the change hook, fan out.  Requires an open session.
  Status assign_externally(Value v, Justification j);

  void attach(Propagatable& c);
  void detach(Propagatable& c);

  PropagationContext& ctx_;
  std::string parent_;
  std::string name_;
  Value value_;
  Justification last_set_by_;
  std::vector<Propagatable*> constraints_;

  // Intrusive visited-dictionary state (docs/PERFORMANCE.md): this variable
  // is "visited" iff visit_epoch_ equals the context's current session epoch;
  // session_changes_ counts value changes under that epoch.  Stamps are
  // globally unique, so stale values from other sessions can never match.
  std::uint64_t visit_epoch_ = 0;
  int session_changes_ = 0;
};

}  // namespace stemcp::core
