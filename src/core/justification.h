// Justifications record *why* a variable holds its value (thesis §4.2.4).
//
// External sources are symbols (#USER, #APPLICATION, ...).  Propagated values
// carry a key-value pair: the source constraint plus a dependency record that
// only that constraint knows how to interpret, enabling antecedent and
// consequence analysis over the dependency graph.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace stemcp::core {

class Propagatable;
class Variable;

/// External and internal value sources, in the thesis's vocabulary.
enum class Source {
  kNone,         ///< never assigned / erased
  kUser,         ///< #USER — designer-entered; outranks propagated values
  kApplication,  ///< #APPLICATION — calculated by a tool
  kUpdate,       ///< #UPDATE — erased by an update-constraint
  kDefault,      ///< default value inherited from a class definition
  kTentative,    ///< #TENTATIVE — module-selection probe (canBeSetTo:)
  kPropagated,   ///< set by a constraint during propagation
};

const char* to_string(Source s);

/// Strength of a propagated value (thesis §4.2.4's unimplemented
/// suggestion: "variables can recognize different strengths of constraints,
/// and allow one type of constraints to overwrite values from another
/// type").  Stronger propagated values resist overwrites by weaker ones.
enum class Strength { kWeak, kNormal, kStrong };

const char* to_string(Strength s);

/// Small-buffer list of antecedent variables.  Nearly every dependency
/// record holds zero or one entry (equality and implicit constraints record
/// the single activating variable; functional constraints record none), so
/// the common case lives entirely in place — formulating and copying a
/// record in the propagation hot path never touches the heap
/// (docs/PERFORMANCE.md).  Rare multi-entry records spill to a vector that
/// holds all elements, keeping iteration contiguous.
class DependencyVarList {
 public:
  DependencyVarList() = default;
  DependencyVarList(std::initializer_list<const Variable*> init) {
    for (const Variable* v : init) push_back(v);
  }

  void push_back(const Variable* v) {
    if (size_ == 0) {
      inline_ = v;
    } else {
      if (size_ == 1) {
        overflow_.clear();
        overflow_.push_back(inline_);
      }
      overflow_.push_back(v);
    }
    ++size_;
  }
  void clear() {
    size_ = 0;
    overflow_.clear();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Variable* operator[](std::size_t i) const { return begin()[i]; }
  const Variable* const* begin() const {
    return size_ <= 1 ? &inline_ : overflow_.data();
  }
  const Variable* const* end() const { return begin() + size_; }

 private:
  const Variable* inline_ = nullptr;
  std::size_t size_ = 0;
  std::vector<const Variable*> overflow_;
};

/// Dependency record for a propagated value (thesis §4.2.4).  Interpreted
/// only by the source constraint: an equality constraint stores the single
/// activating variable; a functional constraint stores nothing and declares
/// `all_arguments`, meaning the result depends on every argument.
struct DependencyRecord {
  DependencyVarList vars;
  bool all_arguments = false;

  static DependencyRecord single(const Variable& v) { return {{&v}, false}; }
  static DependencyRecord all() { return {{}, true}; }
  static DependencyRecord none() { return {{}, false}; }
};

class Justification {
 public:
  Justification() = default;
  explicit Justification(Source s) : source_(s) {}

  static Justification user() { return Justification(Source::kUser); }
  static Justification application() {
    return Justification(Source::kApplication);
  }
  static Justification update() { return Justification(Source::kUpdate); }
  static Justification default_value() {
    return Justification(Source::kDefault);
  }
  static Justification tentative() {
    return Justification(Source::kTentative);
  }
  static Justification propagated(Propagatable& source,
                                  DependencyRecord record,
                                  Strength strength = Strength::kNormal) {
    Justification j(Source::kPropagated);
    j.constraint_ = &source;
    j.record_ = std::move(record);
    j.strength_ = strength;
    return j;
  }

  Source source() const { return source_; }
  bool is_propagated() const { return source_ == Source::kPropagated; }
  bool is_user() const { return source_ == Source::kUser; }
  Strength strength() const { return strength_; }
  /// Non-null only for propagated values: the constraint that set the value.
  Propagatable* constraint() const { return constraint_; }
  const DependencyRecord& record() const { return record_; }

  std::string to_string() const;

 private:
  Source source_ = Source::kNone;
  Propagatable* constraint_ = nullptr;
  DependencyRecord record_;
  Strength strength_ = Strength::kNormal;
};

}  // namespace stemcp::core
