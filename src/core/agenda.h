// Agenda scheduler (thesis §4.2.1): named first-in-first-out queues without
// duplicate entries, drained in fixed priority order.  Functional constraints
// schedule themselves on #functionalConstraints; hierarchical propagation
// adds the #implicitConstraints agenda (§5.1.2), drained ahead of the
// functional agenda here so all duals of a changed class variable settle
// before dependent recomputation (see agenda.cpp for the deviation note).
//
// Hot-path design (docs/PERFORMANCE.md): agenda names are interned to small
// integer ids once, duplicate suppression rides on per-task epoch stamps
// instead of a std::set per queue, and the queue-depth histogram is recorded
// through a pre-resolved handle — the steady-state schedule()/pop path
// touches no strings and performs no heap allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace stemcp::core {

class Histogram;
class MetricsRegistry;
class Propagatable;
class Tracer;
class Variable;

/// Well-known agenda names.
inline constexpr const char* kFunctionalConstraintsAgenda =
    "functionalConstraints";
inline constexpr const char* kImplicitConstraintsAgenda =
    "implicitConstraints";

class AgendaScheduler {
 public:
  /// Interned agenda identity: the queue index, which doubles as the
  /// priority (0 = drained first).  Stable until set_priority_order()
  /// rebuilds the table (appending a previously-unknown agenda does NOT
  /// invalidate existing ids).
  using AgendaId = std::uint32_t;

  struct Entry {
    Propagatable* task = nullptr;
    Variable* variable = nullptr;  ///< changed variable; null for functional

    friend auto operator<=>(const Entry&, const Entry&) = default;
  };

  AgendaScheduler();

  /// Priority order, highest first.  Unknown agenda names used in schedule()
  /// are appended at the lowest priority.  Invalidates every interned
  /// AgendaId (generation() changes).
  void set_priority_order(std::vector<std::string> names);
  const std::vector<std::string>& priority_order() const { return order_; }

  /// Resolve an agenda name to its id, appending unknown names at the
  /// lowest priority.  The only string-matching step; callers hold the id.
  AgendaId intern(std::string_view name);
  /// Interning-table generation: ids cached under an older generation must
  /// be re-interned.  Globally unique per scheduler instance and per
  /// set_priority_order() call.
  std::uint64_t generation() const { return generation_; }

  /// `scheduleConstraint:variable:onAgendaNamed:` — returns false if an equal
  /// entry was already queued (duplicate suppression).  A task tracks its
  /// queued entries for one scheduler at a time (the engine binds every task
  /// to exactly one context's scheduler); stamps are globally unique, so a
  /// foreign scheduler's stamp never reads as "already queued" here.
  bool schedule(AgendaId agenda, Propagatable& task, Variable* variable);
  bool schedule(const std::string& agenda, Propagatable& task,
                Variable* variable) {
    return schedule(intern(agenda), task, variable);
  }
  /// Steady-state entry point: resolves and caches the agenda id inside the
  /// task itself (keyed by the name pointer and generation()), so repeat
  /// schedules never touch the string.  `name` should be a long-lived
  /// literal such as kFunctionalConstraintsAgenda.
  bool schedule_cached(Propagatable& task, const char* name,
                       Variable* variable);

  /// `removeHighestPriorityScheduledEntry` — first entry of the highest
  /// priority non-empty agenda.
  std::optional<Entry> pop_highest_priority();
  /// Priority (queue index) of the most recent pop; meaningful only right
  /// after a successful pop_highest_priority().
  std::size_t last_popped_priority() const { return last_popped_priority_; }

  bool empty() const;
  std::size_t size() const;
  void clear();

  // ---- instrumentation ----------------------------------------------------
  /// Observability hookup (engine-owned).  `scheduled` / `executed` point at
  /// per-priority counter arrays of `tracked_priorities` slots; overflowing
  /// priorities accumulate in the last slot.  `high_water` tracks the max
  /// total queue depth seen.  Any pointer may be null; tracer/metrics are
  /// consulted only when enabled.
  void bind_instrumentation(std::uint64_t* high_water,
                            std::uint64_t* scheduled_by_priority,
                            std::uint64_t* executed_by_priority,
                            std::size_t tracked_priorities, Tracer* tracer,
                            MetricsRegistry* metrics);

 private:
  struct Queue {
    std::string name;
    std::vector<Entry> fifo;
    std::size_t head = 0;  // pop index; fifo compacted when drained

    // Pre-resolved "agenda_depth.p<i>" histogram (lazy; re-resolved when the
    // metrics generation moves).
    Histogram* depth_hist = nullptr;
    std::uint64_t depth_hist_gen = 0;

    bool empty() const { return head >= fifo.size(); }
  };

  std::vector<std::string> order_;
  std::vector<Queue> queues_;  // parallel to order_
  std::size_t last_popped_priority_ = 0;

  /// Dedup epoch: entries stamped into a task under an older epoch no
  /// longer count as queued.  Globally unique (next_global_stamp), so a
  /// task touched by two schedulers can never cross-match.
  std::uint64_t epoch_;
  std::uint64_t generation_;

  std::uint64_t* high_water_ = nullptr;
  std::uint64_t* scheduled_ = nullptr;
  std::uint64_t* executed_ = nullptr;
  std::size_t tracked_priorities_ = 0;
  Tracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace stemcp::core
