// Agenda scheduler (thesis §4.2.1): named first-in-first-out queues without
// duplicate entries, drained in fixed priority order.  Functional constraints
// schedule themselves on #functionalConstraints; hierarchical propagation
// adds the #implicitConstraints agenda (§5.1.2), drained ahead of the
// functional agenda here so all duals of a changed class variable settle
// before dependent recomputation (see agenda.cpp for the deviation note).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace stemcp::core {

class MetricsRegistry;
class Propagatable;
class Tracer;
class Variable;

/// Well-known agenda names.
inline constexpr const char* kFunctionalConstraintsAgenda =
    "functionalConstraints";
inline constexpr const char* kImplicitConstraintsAgenda =
    "implicitConstraints";

class AgendaScheduler {
 public:
  struct Entry {
    Propagatable* task = nullptr;
    Variable* variable = nullptr;  ///< changed variable; null for functional

    friend auto operator<=>(const Entry&, const Entry&) = default;
  };

  AgendaScheduler();

  /// Priority order, highest first.  Unknown agenda names used in schedule()
  /// are appended at the lowest priority.
  void set_priority_order(std::vector<std::string> names);
  const std::vector<std::string>& priority_order() const { return order_; }

  /// `scheduleConstraint:variable:onAgendaNamed:` — returns false if an equal
  /// entry was already queued (duplicate suppression).
  bool schedule(const std::string& agenda, Propagatable& task,
                Variable* variable);

  /// `removeHighestPriorityScheduledEntry` — first entry of the highest
  /// priority non-empty agenda.
  std::optional<Entry> pop_highest_priority();
  /// Priority (queue index) of the most recent pop; meaningful only right
  /// after a successful pop_highest_priority().
  std::size_t last_popped_priority() const { return last_popped_priority_; }

  bool empty() const;
  std::size_t size() const;
  void clear();

  // ---- instrumentation ----------------------------------------------------
  /// Observability hookup (engine-owned).  `scheduled` / `executed` point at
  /// per-priority counter arrays of `tracked_priorities` slots; overflowing
  /// priorities accumulate in the last slot.  `high_water` tracks the max
  /// total queue depth seen.  Any pointer may be null; tracer/metrics are
  /// consulted only when enabled.
  void bind_instrumentation(std::uint64_t* high_water,
                            std::uint64_t* scheduled_by_priority,
                            std::uint64_t* executed_by_priority,
                            std::size_t tracked_priorities, Tracer* tracer,
                            MetricsRegistry* metrics);

 private:
  struct Queue {
    std::string name;
    std::vector<Entry> fifo;
    std::size_t head = 0;  // pop index; fifo compacted when drained
    std::set<Entry> members;

    bool empty() const { return head >= fifo.size(); }
  };

  std::size_t queue_index(const std::string& name);

  std::vector<std::string> order_;
  std::vector<Queue> queues_;  // parallel to order_
  std::size_t last_popped_priority_ = 0;

  std::uint64_t* high_water_ = nullptr;
  std::uint64_t* scheduled_ = nullptr;
  std::uint64_t* executed_ = nullptr;
  std::size_t tracked_priorities_ = 0;
  Tracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace stemcp::core
