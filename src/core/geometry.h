// Geometry substrate: points, rectangles and the eight Manhattan orientations
// used for cell placement (thesis §7.2).  Bounding boxes are stored in Value
// objects and flow through the constraint networks, so this lives in core.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace stemcp::core {

/// Integer design-grid coordinate (lambda units).
using Coord = std::int64_t;

struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  friend auto operator<=>(const Point&, const Point&) = default;
  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

/// Closed axis-aligned rectangle.  An empty rect has x1 < x0 or y1 < y0.
struct Rect {
  Coord x0 = 0;
  Coord y0 = 0;
  Coord x1 = -1;  // default-constructed rect is empty
  Coord y1 = -1;

  static Rect from_extent(Point origin, Coord width, Coord height) {
    return {origin.x, origin.y, origin.x + width, origin.y + height};
  }

  friend bool operator==(const Rect&, const Rect&) = default;

  bool empty() const { return x1 < x0 || y1 < y0; }
  Coord width() const { return empty() ? 0 : x1 - x0; }
  Coord height() const { return empty() ? 0 : y1 - y0; }
  Point origin() const { return {x0, y0}; }
  Point corner() const { return {x1, y1}; }
  Point center() const { return {(x0 + x1) / 2, (y0 + y1) / 2}; }
  Coord area() const { return width() * height(); }

  bool contains(Point p) const {
    return !empty() && p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  bool contains(const Rect& r) const {
    return r.empty() ||
           (!empty() && r.x0 >= x0 && r.x1 <= x1 && r.y0 >= y0 && r.y1 <= y1);
  }
  /// "extent >= other extent": can a cell whose class box is `other` be
  /// placed in this box (thesis Fig 7.7 isSatisfiedBy:)?
  bool extent_covers(const Rect& r) const {
    return width() >= r.width() && height() >= r.height();
  }
  bool intersects(const Rect& r) const {
    return !empty() && !r.empty() && r.x0 <= x1 && r.x1 >= x0 && r.y0 <= y1 &&
           r.y1 >= y0;
  }
  Rect union_with(const Rect& r) const {
    if (empty()) return r;
    if (r.empty()) return *this;
    return {std::min(x0, r.x0), std::min(y0, r.y0), std::max(x1, r.x1),
            std::max(y1, r.y1)};
  }
  Rect translated(Point d) const {
    if (empty()) return *this;
    return {x0 + d.x, y0 + d.y, x1 + d.x, y1 + d.y};
  }

  std::string to_string() const;
};

/// The eight Manhattan orientations of IC layout.
enum class Orientation : std::uint8_t {
  kR0,     ///< identity
  kR90,    ///< rotate 90 degrees counter-clockwise
  kR180,
  kR270,
  kMX,     ///< mirror about the X axis (y -> -y)
  kMY,     ///< mirror about the Y axis (x -> -x)
  kMXR90,  ///< mirror X then rotate 90
  kMYR90,  ///< mirror Y then rotate 90
};

const char* to_string(Orientation o);

/// Placement transform: orientation followed by translation (thesis §3.3.2,
/// the `transformation` instance variable of cell instances).
class Transform {
 public:
  Transform() = default;
  Transform(Orientation o, Point translation) : orient_(o), t_(translation) {}
  static Transform translate(Point p) { return {Orientation::kR0, p}; }

  Orientation orientation() const { return orient_; }
  Point translation() const { return t_; }

  Point apply(Point p) const;
  Rect apply(const Rect& r) const;
  /// this-then-other composition: (other * this).apply(p) ==
  /// other.apply(this->apply(p)).
  Transform then(const Transform& other) const;
  Transform inverse() const;

  friend bool operator==(const Transform&, const Transform&) = default;
  std::string to_string() const;

 private:
  Orientation orient_ = Orientation::kR0;
  Point t_{};
};

}  // namespace stemcp::core
