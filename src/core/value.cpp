#include "core/value.h"

#include <sstream>

namespace stemcp::core {

bool Value::operator==(const Value& o) const {
  if (is_boxed() && o.is_boxed()) {
    const auto& a = as_boxed();
    const auto& b = o.as_boxed();
    if (a == b) return true;
    if (!a || !b) return false;
    return a->equals(*b);
  }
  // Mixed int/real numerics compare by value so that a propagated 5.0
  // satisfies an integer 5 (delay sums mix the two freely).
  if (is_number() && o.is_number() && (is_int() != o.is_int())) {
    return as_number() == o.as_number();
  }
  return v_ == o.v_;
}

std::string Value::to_string() const {
  if (is_nil()) return "nil";
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_int()) return std::to_string(as_int());
  if (is_real()) {
    std::ostringstream os;
    os << as_real();
    return os.str();
  }
  if (is_string()) return "'" + as_string() + "'";
  if (is_rect()) return as_rect().to_string();
  if (is_boxed()) return as_boxed() ? as_boxed()->to_string() : "nil";
  return "?";
}

}  // namespace stemcp::core
