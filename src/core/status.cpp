#include "core/status.h"

#include "core/propagatable.h"
#include "core/variable.h"

namespace stemcp::core {

std::string ViolationInfo::to_string() const {
  std::string s = "constraint violation";
  if (constraint != nullptr) s += " [" + constraint->describe() + "]";
  if (variable != nullptr) {
    s += " at " + variable->path() + " (current " +
         variable->value().to_string() + ", offered " + offered.to_string() +
         ")";
  }
  if (!message.empty()) s += ": " + message;
  return s;
}

}  // namespace stemcp::core
