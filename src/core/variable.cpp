#include "core/variable.h"

#include <algorithm>
#include <stdexcept>

#include "core/constraint.h"
#include "core/engine.h"

namespace stemcp::core {

Variable::Variable(PropagationContext& ctx, std::string parent_name,
                   std::string name)
    : ctx_(ctx), parent_(std::move(parent_name)), name_(std::move(name)) {}

Variable::~Variable() {
  // Detach from any constraints that still reference this variable so no
  // dangling argument pointers survive.  Variables must not be destroyed
  // while a propagation session is running.
  const auto list = constraints_;
  for (Propagatable* p : list) {
    if (auto* c = dynamic_cast<Constraint*>(p)) c->detach_argument_raw(*this);
  }
}

Status Variable::set(Value v, Justification j) {
  if (!ctx_.enabled()) {
    // CPSwitch off: simple assignment, no propagation, no checking (§5.3).
    value_ = std::move(v);
    last_set_by_ = std::move(j);
    return Status::ok();
  }
  if (ctx_.in_propagation()) {
    throw std::logic_error("external assignment during propagation: " +
                           path());
  }
  return ctx_.run_session(
      [&]() -> Status { return assign_externally(std::move(v), std::move(j)); });
}

Status Variable::set_in_session(Value v, Justification j) {
  if (!ctx_.enabled()) {
    value_ = std::move(v);
    last_set_by_ = std::move(j);
    return Status::ok();
  }
  if (!ctx_.in_propagation()) {
    throw std::logic_error("set_in_session outside a propagation session: " +
                           path());
  }
  return assign_externally(std::move(v), std::move(j));
}

Status Variable::assign_externally(Value v, Justification j) {
  ctx_.record_visited(*this);
  ctx_.count_change(*this);
  const bool changed = value_ != v;
  value_ = std::move(v);
  last_set_by_ = std::move(j);
  ++ctx_.mutable_stats().assignments;
  if (ctx_.tracing()) {
    ctx_.tracer().emit(TraceEventType::kAssignment,
                       path() + " = " + value_.to_string(), this);
  }
  if (changed) {
    const Status hook = after_value_change(last_set_by_);
    if (hook.is_violation()) return hook;
  }
  return propagate_to_constraints(nullptr);
}

Status Variable::set_from_constraint(Value v, Propagatable& source,
                                     Justification j) {
  if (!ctx_.enabled()) {
    value_ = std::move(v);
    last_set_by_ = std::move(j);
    return Status::ok();
  }
  // Termination criterion (§4.2.2): the current value agrees with the
  // propagated value — the wavefront stops here.
  if (value_ == v) return Status::no_change();
  // Value-change rule: a variable may change at most
  // max_changes_per_variable times per propagation cycle (§4.2.2; the
  // default of 1 is the thesis's one-value-change rule).  A further,
  // disagreeing change is a violation.
  if (!ctx_.may_change_again(*this)) {
    return ctx_.signal_violation(
        {&source, this, std::move(v),
         "value-change rule: variable exhausted its " +
             std::to_string(ctx_.max_changes_per_variable()) +
             " change(s) this propagation"});
  }
  // Overwrite precedence: e.g. #USER values cannot be modified by
  // propagation.
  if (!can_change_value_to(v, j)) {
    return ctx_.signal_violation(
        {&source, this, std::move(v),
         "value protected by " +
             std::string(core::to_string(last_set_by_.source())) +
             " justification"});
  }
  ctx_.record_visited(*this);
  ctx_.count_change(*this);
  value_ = std::move(v);
  last_set_by_ = std::move(j);
  ++ctx_.mutable_stats().assignments;
  if (ctx_.tracing()) {
    ctx_.tracer().emit(TraceEventType::kAssignment,
                       path() + " = " + value_.to_string(), this);
  }
  const Status hook = after_value_change(last_set_by_);
  if (hook.is_violation()) return hook;
  return propagate_to_constraints(&source);
}

Status Variable::erase_for_update(Propagatable& source) {
  if (!ctx_.enabled()) {
    reset_raw();
    return Status::ok();
  }
  if (ctx_.in_propagation()) {
    return set_from_constraint(
        Value::nil(), source,
        Justification::propagated(source, DependencyRecord::none()));
  }
  return set(Value::nil(), Justification::update());
}

bool Variable::can_be_set_to(Value v) {
  if (!ctx_.enabled()) return true;
  const Status s = ctx_.run_session([&]() -> Status {
    ctx_.record_visited(*this);
    ctx_.count_change(*this);
    const bool changed = value_ != v;
    value_ = std::move(v);
    last_set_by_ = Justification::tentative();
    if (changed) {
      const Status hook = after_value_change(last_set_by_);
      if (hook.is_violation()) return hook;
    }
    return propagate_to_constraints(nullptr);
  });
  // Restore previous values whether or not the probe succeeded (thesis
  // Fig 8.2 canBeSetTo:); a violation already restored inside the session.
  if (s.is_ok()) ctx_.restore_visited();
  return s.is_ok();
}

void Variable::reset_raw() {
  value_ = Value::nil();
  last_set_by_ = Justification{};
  on_reset();
}

bool Variable::can_change_value_to(const Value&,
                                   const Justification& incoming) const {
  if (incoming.is_user()) return true;  // user input overrides everything
  if (value_.is_nil()) return true;     // nothing to protect
  // Default precedence (§4.2.4): user-specified values have priority over
  // propagated and calculated values.
  if (last_set_by_.source() == Source::kUser) return false;
  // Among propagated values, stronger constraints resist weaker ones.
  if (last_set_by_.is_propagated() && incoming.is_propagated()) {
    return incoming.strength() >= last_set_by_.strength();
  }
  return true;
}

void Variable::antecedents(DependencyTrace& out) const {
  if (!out.variables.insert(this).second) return;
  if (is_dependent() && last_set_by_.constraint() != nullptr) {
    last_set_by_.constraint()->antecedents_of(*this, out);
  }
}

void Variable::consequences(DependencyTrace& out) const {
  if (!out.variables.insert(this).second) return;
  for (Propagatable* c : constraints_) c->consequences_of(*this, out);
  for (Propagatable* ic : implicit_constraints()) ic->consequences_of(*this, out);
}

DependencyTrace Variable::antecedents() const {
  DependencyTrace t;
  antecedents(t);
  return t;
}

DependencyTrace Variable::consequences() const {
  DependencyTrace t;
  consequences(t);
  return t;
}

Status Variable::add_constraint(Constraint& c) { return c.add_argument(*this); }

void Variable::remove_constraint(Constraint& c) { c.remove_argument(*this); }

Status Variable::propagate_along(Propagatable& c) {
  ++ctx_.mutable_stats().activations;
  if (ctx_.tracing()) {
    ctx_.tracer().emit(TraceEventType::kActivation, c.describe(), &c);
  }
  Status s = c.propagate_variable(*this);
  if (s.is_violation()) return s;
  return ctx_.drain_agendas();
}

Status Variable::propagate_to_constraints(Propagatable* except) {
  // Snapshot: violation handlers or procedural hooks may edit the list.  The
  // snapshot lives in a context-owned scratch buffer pooled by recursion
  // depth, so steady-state fan-out copies nothing onto the heap.
  const bool traced = ctx_.tracing();
  std::vector<Propagatable*>& explicit_list = ctx_.borrow_fanout_scratch();
  struct ScratchGuard {
    PropagationContext& ctx;
    ~ScratchGuard() { ctx.release_fanout_scratch(); }
  } guard{ctx_};
  explicit_list.assign(constraints_.begin(), constraints_.end());
  for (Propagatable* c : explicit_list) {
    if (c == except) continue;
    ++ctx_.mutable_stats().activations;
    if (traced) {
      ctx_.tracer().emit(TraceEventType::kActivation, c->describe(), c);
    }
    const Status s = c->propagate_variable(*this);
    if (s.is_violation()) return s;
  }
  for (Propagatable* ic : implicit_constraints()) {
    if (ic == except) continue;
    ++ctx_.mutable_stats().activations;
    if (traced) {
      ctx_.tracer().emit(TraceEventType::kActivation, ic->describe(), ic);
    }
    const Status s = ic->propagate_variable(*this);
    if (s.is_violation()) return s;
  }
  return Status::ok();
}

void Variable::restore_state(Value v, Justification j) {
  value_ = std::move(v);
  last_set_by_ = std::move(j);
}

Status Variable::after_value_change(const Justification&) {
  return Status::ok();
}

void Variable::attach(Propagatable& c) {
  if (std::find(constraints_.begin(), constraints_.end(), &c) ==
      constraints_.end()) {
    constraints_.push_back(&c);
  }
}

void Variable::detach(Propagatable& c) {
  constraints_.erase(
      std::remove(constraints_.begin(), constraints_.end(), &c),
      constraints_.end());
}

std::string Variable::to_string() const {
  return path() + " = " + value_.to_string() + " (" +
         last_set_by_.to_string() + ")";
}

}  // namespace stemcp::core
