#include "core/trace.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>
#include <mutex>
#include <shared_mutex>
#include <sstream>

namespace stemcp::core {

std::uint64_t next_global_stamp() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// ---------------------------------------------------------------------------
// TraceEvent

const char* to_string(TraceEventType t) {
  switch (t) {
    case TraceEventType::kSessionBegin: return "sessionBegin";
    case TraceEventType::kSessionEnd: return "sessionEnd";
    case TraceEventType::kAssignment: return "assignment";
    case TraceEventType::kActivation: return "activation";
    case TraceEventType::kAgendaSchedule: return "agendaSchedule";
    case TraceEventType::kAgendaPop: return "agendaPop";
    case TraceEventType::kCheck: return "check";
    case TraceEventType::kViolation: return "violation";
    case TraceEventType::kRestore: return "restore";
    case TraceEventType::kNetworkEdit: return "networkEdit";
    case TraceEventType::kRequestPhase: return "requestPhase";
  }
  return "unknown";
}

void TraceEvent::set_label(std::string_view s) {
  const std::size_t n = std::min(s.size(), kLabelCapacity - 1);
  std::memcpy(label, s.data(), n);
  label[n] = '\0';
}

std::string_view TraceEvent::label_view() const {
  return std::string_view(label);
}

// ---------------------------------------------------------------------------
// RingBufferSink

RingBufferSink::RingBufferSink(std::size_t capacity)
    : buf_(capacity == 0 ? 1 : capacity) {}

void RingBufferSink::consume(const TraceEvent& e) {
  const std::uint64_t w = write_.load(std::memory_order_relaxed);
  buf_[w % buf_.size()] = e;
  write_.store(w + 1, std::memory_order_release);
}

std::uint64_t RingBufferSink::overwritten() const {
  const std::uint64_t total = total_consumed();
  return total > buf_.size() ? total - buf_.size() : 0;
}

std::size_t RingBufferSink::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(total_consumed(), buf_.size()));
}

std::vector<TraceEvent> RingBufferSink::snapshot() const {
  const std::uint64_t total = total_consumed();
  const std::uint64_t n = std::min<std::uint64_t>(total, buf_.size());
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = total - n; i < total; ++i) {
    out.push_back(buf_[i % buf_.size()]);
  }
  return out;
}

void RingBufferSink::clear() {
  write_.store(0, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// JSON helpers

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

std::string json_string(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_json_escaped(out, s);
  out += '"';
  return out;
}

}  // namespace

std::string trace_event_to_json(const TraceEvent& e) {
  std::string out;
  out += "{\"seq\":" + std::to_string(e.seq);
  out += ",\"type\":" + json_string(to_string(e.type));
  out += ",\"ts_ns\":" + std::to_string(e.timestamp_ns);
  if (e.duration_ns != 0) {
    out += ",\"dur_ns\":" + std::to_string(e.duration_ns);
  }
  out += ",\"priority\":" + std::to_string(e.priority);
  out += ",\"label\":" + json_string(e.label_view());
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// JsonlFileSink

struct JsonlFileSink::Impl {
  std::ofstream out;
};

JsonlFileSink::JsonlFileSink(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::out | std::ios::trunc);
}

JsonlFileSink::~JsonlFileSink() = default;

bool JsonlFileSink::ok() const { return impl_->out.good(); }

void JsonlFileSink::consume(const TraceEvent& e) {
  impl_->out << trace_event_to_json(e) << '\n';
}

void JsonlFileSink::flush() { impl_->out.flush(); }

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer() = default;
Tracer::~Tracer() = default;

void Tracer::set_enabled(bool on) {
  if (on && sinks_.empty()) {
    default_ring_ = std::make_shared<RingBufferSink>();
    sinks_.push_back(default_ring_);
  }
  enabled_ = on;
}

void Tracer::add_sink(std::shared_ptr<TraceSink> sink) {
  if (!sink) return;
  if (default_ring_ == nullptr) {
    default_ring_ = std::dynamic_pointer_cast<RingBufferSink>(sink);
  }
  sinks_.push_back(std::move(sink));
}

void Tracer::clear_sinks() {
  sinks_.clear();
  default_ring_.reset();
}

RingBufferSink* Tracer::ring() const { return default_ring_.get(); }

void Tracer::emit(TraceEventType type, std::string_view label,
                  const void* subject, std::uint64_t duration_ns,
                  std::uint8_t priority) {
  if (!enabled_) return;
  TraceEvent e;
  e.type = type;
  e.priority = priority;
  e.seq = seq_++;
  e.timestamp_ns = now_ns();
  e.duration_ns = duration_ns;
  e.subject = subject;
  e.set_label(label);
  for (auto& s : sinks_) s->consume(e);
}

void Tracer::flush() {
  for (auto& s : sinks_) s->flush();
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Chrome trace-event export

namespace {

void write_chrome_event(std::ostream& out, const TraceEvent& e, bool& first) {
  const double ts_us = static_cast<double>(e.timestamp_ns) / 1000.0;
  const double dur_us = static_cast<double>(e.duration_ns) / 1000.0;
  const char* cat = to_string(e.type);

  std::string name(e.label_view());
  if (name.empty()) name = cat;

  const char* ph = "i";
  switch (e.type) {
    case TraceEventType::kSessionBegin: ph = "B"; name = "session"; break;
    case TraceEventType::kSessionEnd: ph = "E"; name = "session"; break;
    case TraceEventType::kCheck:
    case TraceEventType::kAgendaPop:
    case TraceEventType::kRequestPhase: ph = "X"; break;
    default: break;
  }

  if (!first) out << ",\n";
  first = false;

  out << "{\"name\":" << json_string(name) << ",\"cat\":" << json_string(cat)
      << ",\"ph\":\"" << ph << "\",\"ts\":" << ts_us
      << ",\"pid\":1,\"tid\":1";
  if (*ph == 'X') out << ",\"dur\":" << dur_us;
  if (*ph == 'i') out << ",\"s\":\"t\"";
  out << ",\"args\":{\"seq\":" << e.seq
      << ",\"priority\":" << static_cast<unsigned>(e.priority);
  if (!e.label_view().empty()) {
    out << ",\"label\":" << json_string(e.label_view());
  }
  out << "}}";
}

}  // namespace

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& out) {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  // A wrapped ring may retain a sessionEnd without its begin; Perfetto
  // tolerates unmatched E events, but skip a leading E for cleanliness.
  bool saw_begin = false;
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kSessionBegin) saw_begin = true;
    if (e.type == TraceEventType::kSessionEnd && !saw_begin) continue;
    write_chrome_event(out, e, first);
  }
  out << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

bool export_chrome_trace(const Tracer& tracer, const std::string& path) {
  RingBufferSink* ring = tracer.ring();
  if (ring == nullptr) return false;
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.good()) return false;
  write_chrome_trace(ring->snapshot(), out);
  return out.good();
}

// ---------------------------------------------------------------------------
// Histogram

std::size_t Histogram::bucket_index(std::uint64_t value) {
  const std::size_t bucket =
      value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  return std::min(bucket, kBuckets - 1);
}

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_index(value)] += 1;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  const double target = std::max(1.0, std::ceil(count_ * p / 100.0));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Upper bound of bucket i: values v with bit_width(v) == i.
      if (i == 0) return 0;
      if (i >= 63) return max_;
      return std::min(max_, (std::uint64_t{1} << i) - 1);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::clear() { *this = Histogram{}; }

Histogram Histogram::from_parts(
    const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t count,
    std::uint64_t sum, std::uint64_t min, std::uint64_t max) {
  Histogram h;
  h.buckets_ = buckets;
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = count ? min : 0;
  h.max_ = max;
  return h;
}

// ---------------------------------------------------------------------------
// ConcurrentHistogram

namespace {

void atomic_update_min(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_update_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void ConcurrentHistogram::record(std::uint64_t value) {
  buckets_[Histogram::bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_update_min(min_, value);
  atomic_update_max(max_, value);
}

void ConcurrentHistogram::merge(const Histogram& h) {
  if (h.count() == 0) return;
  const auto& b = h.buckets();
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (b[i] != 0) buckets_[i].fetch_add(b[i], std::memory_order_relaxed);
  }
  count_.fetch_add(h.count(), std::memory_order_relaxed);
  sum_.fetch_add(h.sum(), std::memory_order_relaxed);
  atomic_update_min(min_, h.min());
  atomic_update_max(max_, h.max());
}

Histogram ConcurrentHistogram::snapshot() const {
  std::array<std::uint64_t, Histogram::kBuckets> b;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    b[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return Histogram::from_parts(b, count_.load(std::memory_order_relaxed),
                               sum_.load(std::memory_order_relaxed),
                               min_.load(std::memory_order_relaxed),
                               max_.load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// MetricsRegistry

void MetricsRegistry::add_counter(const std::string& name,
                                  std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

void MetricsRegistry::clear() {
  counters_.clear();
  histograms_.clear();
  // Handles resolved before the clear dangle; the new generation tells
  // every cache site to re-resolve.
  generation_ = next_global_stamp();
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out << ',';
    first = false;
    out << json_string(name) << ':' << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ',';
    first = false;
    out << json_string(name) << ":{\"count\":" << h.count()
        << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
        << ",\"max\":" << h.max() << ",\"mean\":" << h.mean()
        << ",\"p50\":" << h.percentile(50.0)
        << ",\"p90\":" << h.percentile(90.0)
        << ",\"p99\":" << h.percentile(99.0)
        << ",\"p999\":" << h.percentile(99.9) << '}';
  }
  out << "}}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Process-global aggregation

namespace {

/// Process-global aggregate.  Counter values and histogram buckets are
/// atomics; the shared mutex guards only the name→slot maps, so the common
/// case (all names already registered) takes a reader lock and merges fully
/// in parallel.  std::map never invalidates node references, so slots stay
/// valid while any lock is held.
class GlobalMetrics {
 public:
  void merge(const MetricsRegistry& m) {
    ensure_slots(m);
    const std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [name, v] : m.counters()) {
      const auto it = counters_.find(name);
      if (it != counters_.end()) {
        it->second.fetch_add(v, std::memory_order_relaxed);
      }
    }
    for (const auto& [name, h] : m.histograms()) {
      const auto it = histograms_.find(name);
      if (it != histograms_.end()) it->second.merge(h);
    }
  }

  void add_counter(const std::string& name, std::uint64_t delta) {
    {
      const std::shared_lock<std::shared_mutex> lock(mu_);
      const auto it = counters_.find(name);
      if (it != counters_.end()) {
        it->second.fetch_add(delta, std::memory_order_relaxed);
        return;
      }
    }
    const std::unique_lock<std::shared_mutex> lock(mu_);
    counters_[name].fetch_add(delta, std::memory_order_relaxed);
  }

  /// One coherent load per counter/bucket into a plain registry.
  MetricsRegistry snapshot_registry() const {
    MetricsRegistry snap;
    const std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [name, v] : counters_) {
      snap.add_counter(name, v.load(std::memory_order_relaxed));
    }
    for (const auto& [name, h] : histograms_) {
      snap.histogram(name) = h.snapshot();
    }
    return snap;
  }

  std::string to_json() const { return snapshot_registry().to_json(); }

  void reset() {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    counters_.clear();
    histograms_.clear();
  }

 private:
  /// Create any missing slots up front (writer lock), so the merge itself
  /// can run under the reader lock.  A concurrent reset() may drop a slot
  /// between the two phases; the merge then skips it — the reset wins.
  void ensure_slots(const MetricsRegistry& m) {
    const std::unique_lock<std::shared_mutex> lock(mu_);
    for (const auto& [name, v] : m.counters()) {
      (void)v;
      counters_.try_emplace(name);
    }
    for (const auto& [name, h] : m.histograms()) {
      (void)h;
      histograms_.try_emplace(name);
    }
  }

  mutable std::shared_mutex mu_;
  std::map<std::string, std::atomic<std::uint64_t>> counters_;
  std::map<std::string, ConcurrentHistogram> histograms_;
};

GlobalMetrics& global_metrics() {
  static GlobalMetrics g;
  return g;
}

}  // namespace

void merge_into_global_metrics(const MetricsRegistry& m) {
  global_metrics().merge(m);
}

void add_global_counter(const std::string& name, std::uint64_t delta) {
  global_metrics().add_counter(name, delta);
}

std::string global_metrics_json() { return global_metrics().to_json(); }

void reset_global_metrics() { global_metrics().reset(); }

// ---------------------------------------------------------------------------
// Prometheus text exposition

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (dots in
/// our registry keys, parens in constraint types) folds to '_'.
std::string prometheus_name(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + name.size());
  out.append(prefix);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string metrics_to_prometheus(const MetricsRegistry& m,
                                  std::string_view prefix) {
  std::ostringstream out;
  for (const auto& [name, v] : m.counters()) {
    const std::string pn = prometheus_name(prefix, name);
    out << "# TYPE " << pn << " counter\n" << pn << ' ' << v << '\n';
  }
  for (const auto& [name, h] : m.histograms()) {
    const std::string pn = prometheus_name(prefix, name);
    out << "# TYPE " << pn << " histogram\n";
    std::uint64_t cumulative = 0;
    const auto& buckets = h.buckets();
    for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
      if (buckets[i] == 0) continue;
      cumulative += buckets[i];
      // Upper bound of log2 bucket i: largest v with bit_width(v) == i.
      const std::uint64_t le = i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
      out << pn << "_bucket{le=\"" << le << "\"} " << cumulative << '\n';
    }
    // The last bucket (and everything above) folds into +Inf.
    out << pn << "_bucket{le=\"+Inf\"} " << h.count() << '\n'
        << pn << "_sum " << h.sum() << '\n'
        << pn << "_count " << h.count() << '\n';
  }
  return out.str();
}

std::string global_metrics_prometheus(std::string_view prefix) {
  return metrics_to_prometheus(global_metrics().snapshot_registry(), prefix);
}

}  // namespace stemcp::core
