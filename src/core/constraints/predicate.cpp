#include "core/constraints/predicate.h"

#include <cmath>

#include "core/engine.h"

namespace stemcp::core {

const char* to_string(Relation r) {
  switch (r) {
    case Relation::kLess: return "<";
    case Relation::kLessEqual: return "<=";
    case Relation::kGreater: return ">";
    case Relation::kGreaterEqual: return ">=";
    case Relation::kEqual: return "==";
    case Relation::kNotEqual: return "!=";
  }
  return "?";
}

bool holds(Relation r, double lhs, double rhs) {
  switch (r) {
    case Relation::kLess: return lhs < rhs;
    case Relation::kLessEqual: return lhs <= rhs;
    case Relation::kGreater: return lhs > rhs;
    case Relation::kGreaterEqual: return lhs >= rhs;
    case Relation::kEqual: return lhs == rhs;
    case Relation::kNotEqual: return lhs != rhs;
  }
  return false;
}

// ---- BoundConstraint --------------------------------------------------------

BoundConstraint& BoundConstraint::upper(PropagationContext& ctx, Variable& v,
                                        Value bound) {
  auto& c = ctx.make<BoundConstraint>(Relation::kLessEqual, std::move(bound));
  c.add_argument(v);
  return c;
}

BoundConstraint& BoundConstraint::lower(PropagationContext& ctx, Variable& v,
                                        Value bound) {
  auto& c =
      ctx.make<BoundConstraint>(Relation::kGreaterEqual, std::move(bound));
  c.add_argument(v);
  return c;
}

bool BoundConstraint::is_satisfied() const {
  if (!bound_.is_number()) return true;
  for (const Variable* arg : args_) {
    const Value& v = arg->value();
    if (!v.is_number()) continue;  // unknown characteristics pass vacuously
    if (!holds(relation_, v.as_number(), bound_.as_number())) return false;
  }
  return true;
}

std::string BoundConstraint::kind() const {
  return std::string("bound") + to_string(relation_) + bound_.to_string();
}

// ---- ComparisonConstraint ---------------------------------------------------

ComparisonConstraint& ComparisonConstraint::between(PropagationContext& ctx,
                                                    Relation r, Variable& lhs,
                                                    Variable& rhs) {
  auto& c = ctx.make<ComparisonConstraint>(r);
  c.basic_add_argument(lhs);
  c.basic_add_argument(rhs);
  c.reinitialize_variables();
  return c;
}

bool ComparisonConstraint::is_satisfied() const {
  if (args_.size() < 2) return true;
  const Value& a = args_[0]->value();
  const Value& b = args_[1]->value();
  if (!a.is_number() || !b.is_number()) return true;
  return holds(relation_, a.as_number(), b.as_number());
}

std::string ComparisonConstraint::kind() const {
  return std::string("cmp") + to_string(relation_);
}

// ---- SpacingConstraint --------------------------------------------------------

SpacingConstraint& SpacingConstraint::apart(PropagationContext& ctx,
                                            Variable& left, Variable& right,
                                            double gap) {
  auto& c = ctx.make<SpacingConstraint>(gap);
  c.basic_add_argument(left);
  c.basic_add_argument(right);
  c.reinitialize_variables();
  return c;
}

bool SpacingConstraint::is_satisfied() const {
  if (args_.size() < 2) return true;
  const Value& l = args_[0]->value();
  const Value& r = args_[1]->value();
  if (!l.is_number() || !r.is_number()) return true;
  return r.as_number() - l.as_number() >= gap_;
}

// ---- RangeConstraint --------------------------------------------------------

RangeConstraint& RangeConstraint::over(PropagationContext& ctx, Variable& v,
                                       double lo, double hi) {
  auto& c = ctx.make<RangeConstraint>(lo, hi);
  c.add_argument(v);
  return c;
}

bool RangeConstraint::is_satisfied() const {
  for (const Variable* arg : args_) {
    const Value& v = arg->value();
    if (!v.is_number()) continue;
    if (v.as_number() < lo_ || v.as_number() > hi_) return false;
  }
  return true;
}

// ---- AspectRatioPredicate ---------------------------------------------------

AspectRatioPredicate& AspectRatioPredicate::ratio(PropagationContext& ctx,
                                                  double r,
                                                  Variable& bbox_var) {
  auto& c = ctx.make<AspectRatioPredicate>(r);
  c.add_argument(bbox_var);
  return c;
}

bool AspectRatioPredicate::is_satisfied() const {
  constexpr double kTolerance = 1e-9;
  for (const Variable* arg : args_) {
    const Value& v = arg->value();
    if (!v.is_rect()) continue;
    const Rect& r = v.as_rect();
    if (r.height() == 0) return false;
    const double ratio = static_cast<double>(r.width()) /
                         static_cast<double>(r.height());
    if (std::fabs(ratio - ratio_) > kTolerance) return false;
  }
  return true;
}

// ---- MaxAreaPredicate -------------------------------------------------------

MaxAreaPredicate& MaxAreaPredicate::at_most(PropagationContext& ctx,
                                            Coord max_area,
                                            Variable& bbox_var) {
  auto& c = ctx.make<MaxAreaPredicate>(max_area);
  c.add_argument(bbox_var);
  return c;
}

bool MaxAreaPredicate::is_satisfied() const {
  for (const Variable* arg : args_) {
    const Value& v = arg->value();
    if (!v.is_rect()) continue;
    if (v.as_rect().area() > max_area_) return false;
  }
  return true;
}

}  // namespace stemcp::core
