// UpdateConstraint (thesis ch. 6): declares that a set of derived property
// variables depends on a set of source variables.  When any source changes,
// propagation *erases* (resets to nil) every target; implicit invocation then
// recalculates the erased values the next time they are demanded.  This
// combination keeps the design database internally consistent without a
// severe penalty on updates.
#pragma once

#include <initializer_list>

#include "core/constraint.h"

namespace stemcp::core {

class UpdateConstraint : public Constraint {
 public:
  explicit UpdateConstraint(PropagationContext& ctx) : Constraint(ctx) {}

  static UpdateConstraint& depends(PropagationContext& ctx,
                                   std::initializer_list<Variable*> targets,
                                   std::initializer_list<Variable*> sources);

  void add_source(Variable& v) { basic_add_argument(v); }
  void add_target(Variable& v);
  bool is_target(const Variable& v) const;
  const std::vector<Variable*>& targets() const { return targets_; }

  Status immediate_inference_by_changing(Variable& changed) override;
  /// Validity dependencies assert nothing by themselves.
  bool is_satisfied() const override { return true; }

 protected:
  std::string kind() const override { return "update"; }

 private:
  std::vector<Variable*> targets_;
};

}  // namespace stemcp::core
