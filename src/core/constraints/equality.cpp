#include "core/constraints/equality.h"

#include "core/engine.h"

namespace stemcp::core {

EqualityConstraint& EqualityConstraint::among(
    PropagationContext& ctx, std::initializer_list<Variable*> vars) {
  auto& c = ctx.make<EqualityConstraint>();
  for (Variable* v : vars) c.basic_add_argument(*v);
  c.reinitialize_variables();
  return c;
}

Status EqualityConstraint::immediate_inference_by_changing(Variable& changed) {
  const Value& v = changed.value();
  if (v.is_nil()) return Status::ok();  // nothing to infer from an erasure
  for (Variable* arg : args_) {
    if (arg == &changed) continue;
    const Status s =
        propagate_value_to(*arg, v, DependencyRecord::single(changed));
    if (s.is_violation()) return s;
  }
  return Status::ok();
}

bool EqualityConstraint::is_satisfied() const {
  const Value* first = nullptr;
  for (const Variable* arg : args_) {
    if (arg->value().is_nil()) continue;
    if (first == nullptr) {
      first = &arg->value();
    } else if (*first != arg->value()) {
      return false;
    }
  }
  return true;
}

}  // namespace stemcp::core
