// EqualityConstraint (thesis Fig 4.4): all arguments must hold equal values;
// propagation sets every other argument to the changed variable's value.
#pragma once

#include <initializer_list>

#include "core/constraint.h"

namespace stemcp::core {

class EqualityConstraint : public Constraint {
 public:
  explicit EqualityConstraint(PropagationContext& ctx) : Constraint(ctx) {}

  /// Build and immediately re-propagate over the given variables — the
  /// `EqualityConstraint with:with:` creation idiom (thesis Fig 6.4).
  static EqualityConstraint& among(PropagationContext& ctx,
                                   std::initializer_list<Variable*> vars);

  Status immediate_inference_by_changing(Variable& changed) override;
  bool is_satisfied() const override;

 protected:
  std::string kind() const override { return "equality"; }
};

}  // namespace stemcp::core
