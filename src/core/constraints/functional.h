// Functional constraints (thesis §4.2.1): unidirectional mappings from a
// tuple of argument variables onto a result variable.  Their propagation is
// deferred onto the #functionalConstraints agenda so every input has a chance
// to change before the (possibly expensive) recomputation runs — this is what
// eliminates redundant calculation of transient results (thesis Fig 4.7).
#pragma once

#include <initializer_list>

#include "core/constraint.h"

namespace stemcp::core {

class FunctionalConstraint : public Constraint {
 public:
  explicit FunctionalConstraint(PropagationContext& ctx) : Constraint(ctx) {}

  /// The functional variable receiving the computed value.  Must be set
  /// before propagation; also registered as an argument.
  void set_result(Variable& r);
  Variable* result_variable() const { return result_; }

  /// Schedule instead of propagating immediately (thesis Fig 4.7).
  Status propagate_variable(Variable& changed) override;
  /// Recompute and assign the result (invoked by the agenda drain loop).
  Status propagate_scheduled(Variable* changed) override;

  bool is_satisfied() const override;
  bool test_membership(const Variable& var,
                       const DependencyRecord& record) const override;

  /// `permitChangesByVariable:` — false when the result variable itself
  /// changed (nothing to recompute from).
  virtual bool permit_changes_by(const Variable& changed) const {
    return &changed != result_;
  }

  /// Public evaluation entry used by compiled networks (thesis §9.3).
  Value evaluate_function() const { return compute(); }

 protected:
  /// Compute the functional value from the input arguments; nil means "not
  /// computable yet" and suppresses assignment.
  virtual Value compute() const = 0;

  /// Lazily-filtered view over the argument list that skips the result
  /// variable.  compute() runs on every agenda pop and every final-sweep
  /// check, so the inputs must be walkable without building a vector
  /// (docs/PERFORMANCE.md).
  class InputRange {
   public:
    class iterator {
     public:
      iterator(const Variable* const* p, const Variable* const* end,
               const Variable* skip)
          : p_(p), end_(end), skip_(skip) {
        advance();
      }
      const Variable* operator*() const { return *p_; }
      iterator& operator++() {
        ++p_;
        advance();
        return *this;
      }
      bool operator==(const iterator& o) const { return p_ == o.p_; }
      bool operator!=(const iterator& o) const { return p_ != o.p_; }

     private:
      void advance() {
        while (p_ != end_ && *p_ == skip_) ++p_;
      }
      const Variable* const* p_;
      const Variable* const* end_;
      const Variable* skip_;
    };

    InputRange(const std::vector<Variable*>& args, const Variable* skip)
        : data_(args.data()), size_(args.size()), skip_(skip) {}

    iterator begin() const { return {data_, data_ + size_, skip_}; }
    iterator end() const { return {data_ + size_, data_ + size_, skip_}; }
    std::size_t size() const {
      std::size_t n = 0;
      for (std::size_t i = 0; i < size_; ++i) n += data_[i] != skip_;
      return n;
    }
    const Variable* front() const { return *begin(); }

   private:
    const Variable* const* data_;
    std::size_t size_;
    const Variable* skip_;
  };

  /// Arguments excluding the result variable (allocation-free view).
  InputRange inputs() const { return InputRange(args_, result_); }

  Variable* result_ = nullptr;
};

/// result = sum(inputs) + offset.  All inputs must be numeric and non-nil.
/// With a single input this doubles as the `+k` constraints of thesis
/// Fig 4.9.
class UniAdditionConstraint : public FunctionalConstraint {
 public:
  explicit UniAdditionConstraint(PropagationContext& ctx, double offset = 0.0)
      : FunctionalConstraint(ctx), offset_(offset) {}

  static UniAdditionConstraint& sum(PropagationContext& ctx, Variable& result,
                                    std::initializer_list<Variable*> inputs,
                                    double offset = 0.0);

  double offset() const { return offset_; }

 protected:
  Value compute() const override;
  std::string kind() const override { return "uniAddition"; }

 private:
  double offset_;
};

/// result = max(non-nil inputs); nil when no input is known.  Used at the
/// head of delay networks (max over path sums, thesis §7.3).
class UniMaximumConstraint : public FunctionalConstraint {
 public:
  explicit UniMaximumConstraint(PropagationContext& ctx)
      : FunctionalConstraint(ctx) {}

  static UniMaximumConstraint& max_of(PropagationContext& ctx,
                                      Variable& result,
                                      std::initializer_list<Variable*> inputs);

 protected:
  Value compute() const override;
  std::string kind() const override { return "uniMaximum"; }
};

/// result = min(non-nil inputs); nil when no input is known.
class UniMinimumConstraint : public FunctionalConstraint {
 public:
  explicit UniMinimumConstraint(PropagationContext& ctx)
      : FunctionalConstraint(ctx) {}

 protected:
  Value compute() const override;
  std::string kind() const override { return "uniMinimum"; }
};

/// result = scale * input + offset over a single input (delay derating,
/// technology scaling).
class UniLinearConstraint : public FunctionalConstraint {
 public:
  UniLinearConstraint(PropagationContext& ctx, double scale, double offset)
      : FunctionalConstraint(ctx), scale_(scale), offset_(offset) {}

  double scale() const { return scale_; }
  double offset() const { return offset_; }

 protected:
  Value compute() const override;
  std::string kind() const override { return "uniLinear"; }

 private:
  double scale_;
  double offset_;
};

/// result = product(inputs) * scale (area estimates, load products).
class UniProductConstraint : public FunctionalConstraint {
 public:
  explicit UniProductConstraint(PropagationContext& ctx, double scale = 1.0)
      : FunctionalConstraint(ctx), scale_(scale) {}

  double scale() const { return scale_; }

 protected:
  Value compute() const override;
  std::string kind() const override { return "uniProduct"; }

 private:
  double scale_;
};

/// result = union of all non-empty input rectangles (bounding-box roll-up).
class UniRectUnionConstraint : public FunctionalConstraint {
 public:
  explicit UniRectUnionConstraint(PropagationContext& ctx)
      : FunctionalConstraint(ctx) {}

 protected:
  Value compute() const override;
  std::string kind() const override { return "uniRectUnion"; }
};

}  // namespace stemcp::core
