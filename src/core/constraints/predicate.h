// Predicate constraints: pure checks with no inference.  They participate in
// propagation only by being marked visited, so the final isSatisfied sweep
// (thesis Fig 4.6) evaluates them whenever an argument changes.  This is the
// `PredicateConstraint` family of thesis Fig 7.9.
#pragma once

#include <functional>

#include "core/constraint.h"

namespace stemcp::core {

class PredicateConstraint : public Constraint {
 public:
  explicit PredicateConstraint(PropagationContext& ctx) : Constraint(ctx) {}
  // No inference: the Constraint default marks visited and returns.
};

/// Comparison against a constant or a second variable.
enum class Relation { kLess, kLessEqual, kGreater, kGreaterEqual, kEqual,
                      kNotEqual };

const char* to_string(Relation r);
bool holds(Relation r, double lhs, double rhs);

/// var <relation> bound — e.g. a "120ns or less" delay specification
/// (thesis §5.1).  Nil values are vacuously satisfied: specifications only
/// fire once a characteristic is known.
class BoundConstraint : public PredicateConstraint {
 public:
  BoundConstraint(PropagationContext& ctx, Relation r, Value bound)
      : PredicateConstraint(ctx), relation_(r), bound_(std::move(bound)) {}

  static BoundConstraint& upper(PropagationContext& ctx, Variable& v,
                                Value bound);  // v <= bound
  static BoundConstraint& lower(PropagationContext& ctx, Variable& v,
                                Value bound);  // v >= bound

  Relation relation() const { return relation_; }
  const Value& bound() const { return bound_; }

  bool is_satisfied() const override;

 protected:
  std::string kind() const override;

 private:
  Relation relation_;
  Value bound_;
};

/// first-arg <relation> second-arg over two variables (pitch matching, delay
/// ordering, ...).
class ComparisonConstraint : public PredicateConstraint {
 public:
  ComparisonConstraint(PropagationContext& ctx, Relation r)
      : PredicateConstraint(ctx), relation_(r) {}

  static ComparisonConstraint& between(PropagationContext& ctx, Relation r,
                                       Variable& lhs, Variable& rhs);

  Relation relation() const { return relation_; }

  bool is_satisfied() const override;

 protected:
  std::string kind() const override;

 private:
  Relation relation_;
};

/// left + gap <= right over two variables: the minimum-spacing linear
/// inequality of Electric-style layout constraint systems (thesis §2.1.1),
/// used by the layout-compaction comparison.
class SpacingConstraint : public PredicateConstraint {
 public:
  SpacingConstraint(PropagationContext& ctx, double gap)
      : PredicateConstraint(ctx), gap_(gap) {}

  static SpacingConstraint& apart(PropagationContext& ctx, Variable& left,
                                  Variable& right, double gap);

  double gap() const { return gap_; }
  Variable* left() const { return args_.empty() ? nullptr : args_[0]; }
  Variable* right() const {
    return args_.size() < 2 ? nullptr : args_[1];
  }

  bool is_satisfied() const override;

 protected:
  std::string kind() const override { return "spacing"; }

 private:
  double gap_;
};

/// lo <= var <= hi — parameter range specifications (thesis §5.1.1).
class RangeConstraint : public PredicateConstraint {
 public:
  RangeConstraint(PropagationContext& ctx, double lo, double hi)
      : PredicateConstraint(ctx), lo_(lo), hi_(hi) {}

  static RangeConstraint& over(PropagationContext& ctx, Variable& v, double lo,
                               double hi);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  bool is_satisfied() const override;

 protected:
  std::string kind() const override { return "range"; }

 private:
  double lo_;
  double hi_;
};

/// AspectRatioPredicate (thesis Fig 7.9): every rect argument must have
/// width/height == xYRatio (within a small tolerance).
class AspectRatioPredicate : public PredicateConstraint {
 public:
  AspectRatioPredicate(PropagationContext& ctx, double x_y_ratio)
      : PredicateConstraint(ctx), ratio_(x_y_ratio) {}

  static AspectRatioPredicate& ratio(PropagationContext& ctx, double r,
                                     Variable& bbox_var);

  double x_y_ratio() const { return ratio_; }
  bool is_satisfied() const override;

 protected:
  std::string kind() const override { return "aspectRatio"; }

 private:
  double ratio_;
};

/// Maximum area predicate over rect arguments.
class MaxAreaPredicate : public PredicateConstraint {
 public:
  MaxAreaPredicate(PropagationContext& ctx, Coord max_area)
      : PredicateConstraint(ctx), max_area_(max_area) {}

  static MaxAreaPredicate& at_most(PropagationContext& ctx, Coord max_area,
                                   Variable& bbox_var);

  bool is_satisfied() const override;

 protected:
  std::string kind() const override { return "maxArea"; }

 private:
  Coord max_area_;
};

/// Arbitrary user predicate over the argument list — the open-ended
/// extension point the thesis advertises ("arbitrary design checking can be
/// added ... by introducing additional types of constraints", ch. 7).
class LambdaPredicate : public PredicateConstraint {
 public:
  using Test = std::function<bool(const std::vector<Variable*>&)>;

  LambdaPredicate(PropagationContext& ctx, std::string name, Test test)
      : PredicateConstraint(ctx), name_(std::move(name)),
        test_(std::move(test)) {}

  bool is_satisfied() const override { return test_(arguments()); }

 protected:
  std::string kind() const override { return name_; }

 private:
  std::string name_;
  Test test_;
};

}  // namespace stemcp::core
