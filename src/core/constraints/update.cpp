#include "core/constraints/update.h"

#include <algorithm>

#include "core/engine.h"

namespace stemcp::core {

UpdateConstraint& UpdateConstraint::depends(
    PropagationContext& ctx, std::initializer_list<Variable*> targets,
    std::initializer_list<Variable*> sources) {
  auto& c = ctx.make<UpdateConstraint>();
  for (Variable* t : targets) c.add_target(*t);
  for (Variable* s : sources) c.add_source(*s);
  return c;
}

void UpdateConstraint::add_target(Variable& v) {
  basic_add_argument(v);
  if (std::find(targets_.begin(), targets_.end(), &v) == targets_.end()) {
    targets_.push_back(&v);
  }
}

bool UpdateConstraint::is_target(const Variable& v) const {
  return std::find(targets_.begin(), targets_.end(), &v) != targets_.end();
}

Status UpdateConstraint::immediate_inference_by_changing(Variable& changed) {
  // A target being erased or recalculated does not re-trigger the erasure.
  if (is_target(changed)) return Status::ok();
  for (Variable* t : targets_) {
    if (t->value().is_nil()) continue;  // already erased
    const Status s = propagate_value_to(*t, Value::nil(),
                                        DependencyRecord::single(changed));
    if (s.is_violation()) return s;
  }
  return Status::ok();
}

}  // namespace stemcp::core
