#include "core/constraints/functional.h"

#include <algorithm>

#include "core/engine.h"

namespace stemcp::core {

void FunctionalConstraint::set_result(Variable& r) {
  result_ = &r;
  basic_add_argument(r);
}

Status FunctionalConstraint::propagate_variable(Variable& changed) {
  if (!enabled()) return Status::ok();
  context().mark_visited(*this);
  if (permit_changes_by(changed)) {
    context().agenda().schedule_cached(*this, kFunctionalConstraintsAgenda,
                                       nullptr);
  }
  return Status::ok();
}

Status FunctionalConstraint::propagate_scheduled(Variable*) {
  if (result_ == nullptr) return Status::ok();
  Value v = compute();
  if (v.is_nil()) return Status::ok();  // inputs incomplete: nothing to assign
  return propagate_value_to(*result_, std::move(v), DependencyRecord::all());
}

bool FunctionalConstraint::is_satisfied() const {
  if (result_ == nullptr || result_->value().is_nil()) return true;
  const Value v = compute();
  if (v.is_nil()) return true;  // can't evaluate: vacuously satisfied
  return result_->value() == v;
}

bool FunctionalConstraint::test_membership(
    const Variable& var, const DependencyRecord& record) const {
  if (record.all_arguments) return &var != result_;
  return Constraint::test_membership(var, record);
}

// ---- UniAddition -----------------------------------------------------------

UniAdditionConstraint& UniAdditionConstraint::sum(
    PropagationContext& ctx, Variable& result,
    std::initializer_list<Variable*> in, double offset) {
  auto& c = ctx.make<UniAdditionConstraint>(offset);
  c.set_result(result);
  for (Variable* v : in) c.basic_add_argument(*v);
  c.reinitialize_variables();
  return c;
}

Value UniAdditionConstraint::compute() const {
  bool all_int = offset_ == static_cast<double>(static_cast<std::int64_t>(offset_));
  double sum = offset_;
  for (const Variable* in : inputs()) {
    const Value& v = in->value();
    if (!v.is_number()) return Value::nil();
    if (!v.is_int()) all_int = false;
    sum += v.as_number();
  }
  if (all_int) return Value(static_cast<std::int64_t>(sum));
  return Value(sum);
}

// ---- UniMaximum ------------------------------------------------------------

UniMaximumConstraint& UniMaximumConstraint::max_of(
    PropagationContext& ctx, Variable& result,
    std::initializer_list<Variable*> in) {
  auto& c = ctx.make<UniMaximumConstraint>();
  c.set_result(result);
  for (Variable* v : in) c.basic_add_argument(*v);
  c.reinitialize_variables();
  return c;
}

Value UniMaximumConstraint::compute() const {
  Value best;
  for (const Variable* in : inputs()) {
    const Value& v = in->value();
    if (!v.is_number()) continue;  // unknown paths don't pull the max down
    if (best.is_nil() || v.as_number() > best.as_number()) best = v;
  }
  return best;
}

// ---- UniMinimum ------------------------------------------------------------

Value UniMinimumConstraint::compute() const {
  Value best;
  for (const Variable* in : inputs()) {
    const Value& v = in->value();
    if (!v.is_number()) continue;
    if (best.is_nil() || v.as_number() < best.as_number()) best = v;
  }
  return best;
}

// ---- UniLinear -------------------------------------------------------------

Value UniLinearConstraint::compute() const {
  const auto in = inputs();
  if (in.size() != 1 || !in.front()->value().is_number()) return Value::nil();
  return Value(scale_ * in.front()->value().as_number() + offset_);
}

// ---- UniProduct ------------------------------------------------------------

Value UniProductConstraint::compute() const {
  double product = scale_;
  for (const Variable* in : inputs()) {
    const Value& v = in->value();
    if (!v.is_number()) return Value::nil();
    product *= v.as_number();
  }
  return Value(product);
}

// ---- UniRectUnion ----------------------------------------------------------

Value UniRectUnionConstraint::compute() const {
  Rect acc;
  bool any = false;
  for (const Variable* in : inputs()) {
    const Value& v = in->value();
    if (!v.is_rect()) continue;
    acc = acc.union_with(v.as_rect());
    any = true;
  }
  if (!any) return Value::nil();
  return Value(acc);
}

}  // namespace stemcp::core
