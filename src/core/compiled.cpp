#include "core/compiled.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/engine.h"

namespace stemcp::core {

std::optional<CompiledNetwork> CompiledNetwork::compile(
    PropagationContext& ctx, std::vector<FunctionalConstraint*> constraints) {
  // Kahn's algorithm over producer -> consumer edges.
  std::map<const Variable*, FunctionalConstraint*> producer;
  for (FunctionalConstraint* c : constraints) {
    if (c->result_variable() != nullptr) {
      producer[c->result_variable()] = c;
    }
  }
  std::map<FunctionalConstraint*, int> indegree;
  std::map<FunctionalConstraint*, std::vector<FunctionalConstraint*>> out;
  for (FunctionalConstraint* c : constraints) indegree[c] = 0;
  for (FunctionalConstraint* c : constraints) {
    for (const Variable* arg : c->arguments()) {
      if (arg == c->result_variable()) continue;
      const auto it = producer.find(arg);
      if (it != producer.end() && it->second != c) {
        out[it->second].push_back(c);
        ++indegree[c];
      }
    }
  }
  std::vector<FunctionalConstraint*> ready;
  for (auto& [c, deg] : indegree) {
    if (deg == 0) ready.push_back(c);
  }
  std::vector<FunctionalConstraint*> order;
  order.reserve(constraints.size());
  while (!ready.empty()) {
    FunctionalConstraint* c = ready.back();
    ready.pop_back();
    order.push_back(c);
    for (FunctionalConstraint* succ : out[c]) {
      if (--indegree[succ] == 0) ready.push_back(succ);
    }
  }
  if (order.size() != constraints.size()) return std::nullopt;  // cyclic
  return CompiledNetwork(ctx, std::move(order));
}

CompiledNetwork::CompiledNetwork(PropagationContext& ctx,
                                 std::vector<FunctionalConstraint*> order)
    : ctx_(&ctx), order_(std::move(order)) {
  // Checks = every constraint attached to a written variable that is not
  // itself part of the compiled order.
  std::set<const Propagatable*> members(order_.begin(), order_.end());
  std::set<Propagatable*> found;
  for (FunctionalConstraint* c : order_) {
    Variable* r = c->result_variable();
    if (r == nullptr) continue;
    for (Propagatable* attached : r->constraints()) {
      if (members.count(attached) == 0) found.insert(attached);
    }
  }
  checks_.assign(found.begin(), found.end());
}

Status CompiledNetwork::evaluate() {
  for (FunctionalConstraint* c : order_) {
    Variable* r = c->result_variable();
    if (r == nullptr) continue;
    Value v = c->evaluate_function();
    if (v.is_nil()) continue;  // inputs incomplete
    r->restore_state(std::move(v),
                     Justification::propagated(*c, DependencyRecord::all()));
    ++ctx_->mutable_stats().assignments;
  }
  for (Propagatable* check : checks_) {
    ++ctx_->mutable_stats().checks;
    if (!check->is_satisfied()) {
      return ctx_->signal_violation(
          {check, nullptr, Value::nil(),
           "compiled network check failed: " + check->describe()});
    }
  }
  return Status::ok();
}

}  // namespace stemcp::core
