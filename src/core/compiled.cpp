#include "core/compiled.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/engine.h"

namespace stemcp::core {

std::optional<CompiledNetwork> CompiledNetwork::compile(
    PropagationContext& ctx, std::vector<FunctionalConstraint*> constraints) {
  // Kahn's algorithm over producer -> consumer edges, on flat index-based
  // adjacency (the node set is the input vector itself).  Iterating the
  // input vector — not a pointer-keyed map — makes the resulting order a
  // deterministic function of the caller's constraint order.
  const std::size_t n = constraints.size();
  std::unordered_map<const Variable*, std::size_t> producer;
  producer.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (constraints[i]->result_variable() != nullptr) {
      producer[constraints[i]->result_variable()] = i;
    }
  }
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<std::size_t>> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    FunctionalConstraint* c = constraints[i];
    for (const Variable* arg : c->arguments()) {
      if (arg == c->result_variable()) continue;
      const auto it = producer.find(arg);
      if (it != producer.end() && it->second != i) {
        out[it->second].push_back(i);
        ++indegree[i];
      }
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<FunctionalConstraint*> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t i = ready.back();
    ready.pop_back();
    order.push_back(constraints[i]);
    for (const std::size_t succ : out[i]) {
      if (--indegree[succ] == 0) ready.push_back(succ);
    }
  }
  if (order.size() != n) return std::nullopt;  // cyclic
  return CompiledNetwork(ctx, std::move(order));
}

CompiledNetwork::CompiledNetwork(PropagationContext& ctx,
                                 std::vector<FunctionalConstraint*> order)
    : ctx_(&ctx), order_(std::move(order)) {
  // Checks = every constraint attached to a written variable that is not
  // itself part of the compiled order, in first-encounter order.
  std::unordered_set<const Propagatable*> members(order_.begin(), order_.end());
  std::unordered_set<const Propagatable*> seen;
  for (FunctionalConstraint* c : order_) {
    Variable* r = c->result_variable();
    if (r == nullptr) continue;
    for (Propagatable* attached : r->constraints()) {
      if (members.count(attached) == 0 && seen.insert(attached).second) {
        checks_.push_back(attached);
      }
    }
  }
}

Status CompiledNetwork::evaluate() {
  for (FunctionalConstraint* c : order_) {
    Variable* r = c->result_variable();
    if (r == nullptr) continue;
    Value v = c->evaluate_function();
    if (v.is_nil()) continue;  // inputs incomplete
    r->restore_state(std::move(v),
                     Justification::propagated(*c, DependencyRecord::all()));
    ++ctx_->mutable_stats().assignments;
  }
  for (Propagatable* check : checks_) {
    ++ctx_->mutable_stats().checks;
    if (!check->is_satisfied()) {
      return ctx_->signal_violation(
          {check, nullptr, Value::nil(),
           "compiled network check failed: " + check->describe()});
    }
  }
  return Status::ok();
}

}  // namespace stemcp::core
