// Constraint objects (thesis §4.1.2): assertions over argument variables.
// Semantics are defined by two methods — immediateInferenceByChanging: and
// isSatisfied — which subclasses redefine to customize propagation behaviour.
#pragma once

#include <string>
#include <vector>

#include "core/propagatable.h"
#include "core/status.h"
#include "core/variable.h"

namespace stemcp::core {

class PropagationContext;

class Constraint : public Propagatable {
 public:
  explicit Constraint(PropagationContext& ctx) : ctx_(ctx) {}

  Constraint(const Constraint&) = delete;
  Constraint& operator=(const Constraint&) = delete;

  PropagationContext& context() const { return ctx_; }
  const std::vector<Variable*>& arguments() const { return args_; }
  bool references(const Variable& v) const;

  /// Fine-grained propagation control (thesis §9.3): a disabled constraint
  /// neither propagates nor participates in the final isSatisfied sweep;
  /// re-enabling re-propagates its arguments to restore consistency.
  bool enabled() const { return enabled_; }
  void disable() { enabled_ = false; }
  Status enable();

  /// Strength carried by every value this constraint propagates
  /// (thesis §4.2.4's constraint-strength suggestion); normal by default.
  Strength strength() const { return strength_; }
  void set_strength(Strength s) { strength_ = s; }

  /// Default activation (thesis Fig 4.4): mark visited, then infer
  /// immediately.  Functional constraints override this to schedule instead.
  Status propagate_variable(Variable& changed) override;

  /// `immediateInferenceByChanging:` — examine the changed variable and
  /// assign inferred values to the other arguments.  Default: no inference
  /// (pure check constraints).
  virtual Status immediate_inference_by_changing(Variable& changed);

  /// Add an argument with re-propagation (thesis Fig 4.13): arguments are
  /// re-pushed through this constraint in precedence order — user-specified
  /// first, then constraint-dependent, then other independents.
  Status add_argument(Variable& v);
  /// Attach without re-propagation (used while constructing constraints
  /// before any value exists — `basicAddArgument:`).
  void basic_add_argument(Variable& v);
  /// Remove an argument with dependency-directed erasure and re-propagation
  /// of the remainder (thesis Fig 4.14).
  void remove_argument(Variable& v);
  /// Drop the argument pointer only (no variable-side or dependency
  /// bookkeeping); used during Variable destruction.
  void detach_argument_raw(Variable& v);

  /// `reinitializeVariables` — re-propagate all arguments (after an edit).
  Status reinitialize_variables();

  // Dependency analysis defaults over the argument list (thesis Fig 4.11):
  void antecedents_of(const Variable& var, DependencyTrace& out) const override;
  void consequences_of(const Variable& var,
                       DependencyTrace& out) const override;

  std::string describe() const override;
  std::string type_name() const override { return kind(); }

 protected:
  /// Short type tag used in descriptions ("equality", "uniMax", ...).
  virtual std::string kind() const = 0;

  /// Helper for inference methods: propagate `v` to `target` with a
  /// dependency record, translating the context's bookkeeping.
  Status propagate_value_to(Variable& target, Value v,
                            DependencyRecord record);

  std::vector<Variable*> args_;

 private:
  PropagationContext& ctx_;
  bool enabled_ = true;
  Strength strength_ = Strength::kNormal;
};

}  // namespace stemcp::core
