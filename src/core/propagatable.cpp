#include "core/propagatable.h"

#include "core/engine.h"
#include "core/variable.h"

namespace stemcp::core {

void Propagatable::on_violation(const ViolationInfo& info,
                                PropagationContext& ctx) {
  ctx.report_violation(info);
}

void Propagatable::antecedents_of(const Variable&, DependencyTrace& out) const {
  out.constraints.insert(this);
}

void Propagatable::consequences_of(const Variable&, DependencyTrace&) const {}

bool Propagatable::test_membership(const Variable& var,
                                   const DependencyRecord& record) const {
  if (record.all_arguments) return true;
  for (const Variable* v : record.vars) {
    if (v == &var) return true;
  }
  return false;
}

}  // namespace stemcp::core
