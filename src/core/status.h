// Propagation status plumbing.
//
// The thesis returns nil from assignment methods on constraint violation and
// non-nil otherwise (§5.2, "validity feedback").  Here that channel is an
// explicit Status value; the full violation description is recorded on the
// PropagationContext.
#pragma once

#include <string>

#include "core/value.h"

namespace stemcp::core {

class Propagatable;
class Variable;

enum class StatusCode {
  kOk,        ///< value assigned, propagation continued
  kNoChange,  ///< propagated value agreed with the current value
  kViolation, ///< constraint violation detected; network restored
};

struct Status {
  StatusCode code = StatusCode::kOk;

  static Status ok() { return {StatusCode::kOk}; }
  static Status no_change() { return {StatusCode::kNoChange}; }
  static Status violation() { return {StatusCode::kViolation}; }

  /// Truthiness mirrors the thesis's nil / non-nil convention.
  bool is_ok() const { return code != StatusCode::kViolation; }
  bool is_violation() const { return code == StatusCode::kViolation; }
  explicit operator bool() const { return is_ok(); }

  friend bool operator==(const Status&, const Status&) = default;
};

/// Full description of a detected violation, kept on the context for the
/// violation handler / constraint debugger (thesis §4.2.3, §5.2).
struct ViolationInfo {
  const Propagatable* constraint = nullptr;  ///< detecting constraint, if any
  const Variable* variable = nullptr;        ///< variable that rejected a value
  Value offered;                             ///< value that could not be set
  std::string message;

  std::string to_string() const;
};

}  // namespace stemcp::core
