// PropagationContext: the propagation engine (thesis §4.2).
//
// Owns all constraint objects, the agenda scheduler, the global
// VisitedConstraintsAndVariables dictionary that enforces the
// one-value-change rule, the CPSwitch enable flag (§5.3), violation
// reporting, and restore-on-violation.
//
// Hot-path design (docs/PERFORMANCE.md): the visited dictionary is an epoch
// stamp intruded into every Variable/Propagatable plus an undo trail owned
// here — was_visited / record_visited / may_change_again / mark_visited are
// O(1) stamp compares, and after warm-up a steady-state propagation session
// performs no heap allocation in the schedule/pop/record-visited path.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "core/agenda.h"
#include "core/justification.h"
#include "core/status.h"
#include "core/trace.h"
#include "core/value.h"

namespace stemcp::core {

class Constraint;
class Propagatable;
class Variable;

class PropagationContext {
 public:
  PropagationContext();
  ~PropagationContext();

  PropagationContext(const PropagationContext&) = delete;
  PropagationContext& operator=(const PropagationContext&) = delete;

  // ---- constraint ownership -------------------------------------------
  /// Create a constraint owned by this context.  Arguments are forwarded to
  /// the constraint's constructor after the context reference.
  template <typename T, typename... Args>
  T& make(Args&&... args) {
    auto owned = std::make_unique<T>(*this, std::forward<Args>(args)...);
    T& ref = *owned;
    constraints_.push_back(std::move(owned));
    return ref;
  }

  /// Destroy a constraint: erase every value that depends on it, detach it
  /// from all argument variables, and release it (thesis §4.2.5).
  void destroy_constraint(Constraint& c);

  std::size_t constraint_count() const { return constraints_.size(); }
  /// Non-owning view of every constraint in the context (for audits and
  /// global recovery).
  std::vector<Constraint*> all_constraints() const;

  // ---- CPSwitch ---------------------------------------------------------
  bool enabled() const { return enabled_; }
  /// Disable/enable constraint propagation globally (thesis §5.3).  While
  /// disabled, assignments set values without propagation or checking.
  void set_enabled(bool on) { enabled_ = on; }

  // ---- session state ----------------------------------------------------
  bool in_propagation() const { return in_propagation_; }

  /// Run `body` as one propagation session: clear visited state, execute,
  /// drain agendas, final isSatisfied sweep over visited constraints, and on
  /// violation invoke the handler and restore every visited variable.
  /// `body` is any callable returning Status; it is invoked through a thin
  /// thunk, so no std::function (and no allocation) is involved.
  template <typename F>
  Status run_session(F&& body) {
    using Body = std::remove_reference_t<F>;
    return run_session_impl(
        [](void* b) -> Status { return (*static_cast<Body*>(b))(); }, &body);
  }

  AgendaScheduler& agenda() { return agenda_; }
  const AgendaScheduler& agenda() const { return agenda_; }

  // ---- visited bookkeeping (one-value-change rule) -----------------------
  bool was_visited(const Variable& v) const;
  /// Record the variable's pre-change state (first visit only — putIfAbsent).
  void record_visited(Variable& v);
  /// May this variable still change in the current session?  With the
  /// default limit of 1 this is the thesis's one-value-change rule; raising
  /// the limit is the §9.2.3 "quick fix" for reconvergent fanout, allowing
  /// N value changes per propagation cycle.
  bool may_change_again(const Variable& v) const;
  /// Count one value change against the session limit.
  void count_change(Variable& v);
  int max_changes_per_variable() const { return max_changes_per_variable_; }
  void set_max_changes_per_variable(int n) {
    max_changes_per_variable_ = n < 1 ? 1 : n;
  }
  void mark_visited(Propagatable& c);
  const std::vector<Propagatable*>& visited_constraints() const {
    return visited_constraints_;
  }
  std::size_t visited_variable_count() const { return trail_size_; }

  /// Restore every visited variable to its pre-propagation state (thesis
  /// Fig 4.10).  Public so the constraint editor can offer "restore".
  void restore_visited();

  // ---- violations ---------------------------------------------------------
  using ViolationHandler = std::function<void(const ViolationInfo&)>;
  void set_violation_handler(ViolationHandler h) {
    violation_handler_ = std::move(h);
  }
  /// Record a violation (first one wins within a session) and return
  /// Status::violation() for convenient tail calls.
  Status signal_violation(ViolationInfo info);
  const std::optional<ViolationInfo>& last_violation() const {
    return last_violation_;
  }
  void clear_last_violation() { last_violation_.reset(); }
  /// Invoked by Propagatable::on_violation's default implementation.
  void report_violation(const ViolationInfo& info);

  /// Violation messages reported since construction (the thesis's warning
  /// text window), capped at violation_log_limit(): once full, the oldest
  /// entries are dropped — in O(1), the log is a ring — and counted in
  /// violation_log_dropped().  Oldest first.
  const std::deque<std::string>& violation_log() const {
    return violation_log_;
  }
  std::size_t violation_log_limit() const { return violation_log_limit_; }
  /// Cap the warning window (minimum 1); trims the log immediately.
  void set_violation_log_limit(std::size_t limit);
  std::uint64_t violation_log_dropped() const {
    return violation_log_dropped_;
  }

  // ---- drain / check helpers (exposed for network editing) ---------------
  Status drain_agendas();
  Status check_visited_constraints();

  // ---- statistics (used by the benchmark harness) -------------------------
  struct Stats {
    /// Priorities beyond this many share the last per-priority slot.
    static constexpr std::size_t kTrackedPriorities = 4;

    std::uint64_t sessions = 0;
    std::uint64_t assignments = 0;   ///< successful value changes
    std::uint64_t activations = 0;   ///< propagateVariable: sends
    std::uint64_t scheduled_runs = 0;///< agenda entries executed
    std::uint64_t checks = 0;        ///< isSatisfied evaluations
    std::uint64_t violations = 0;
    std::uint64_t restores = 0;      ///< variables restored

    // Queue-pressure accounting (always on; maintained by the scheduler).
    std::uint64_t agenda_high_water = 0;  ///< max total queue depth seen
    std::array<std::uint64_t, kTrackedPriorities> scheduled_by_priority{};
    std::array<std::uint64_t, kTrackedPriorities> executed_by_priority{};
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  Stats& mutable_stats() { return stats_; }

  // ---- observability ------------------------------------------------------
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  /// Hot-path guard: is structured tracing on?  (One inlined bool load.)
  bool tracing() const { return tracer_.enabled(); }
  /// Hot-path guard for instrumentation that feeds either subsystem.
  bool observing() const { return tracer_.enabled() || metrics_.enabled(); }

  /// Depth-pooled scratch buffers for constraint fan-out snapshots
  /// (internal, used by Variable::propagate_to_constraints): re-entrant
  /// propagation borrows one buffer per recursion depth; capacities persist,
  /// so steady-state fan-out copies allocate nothing.  Every borrow must be
  /// matched by exactly one release.
  std::vector<Propagatable*>& borrow_fanout_scratch();
  void release_fanout_scratch();

 private:
  friend class Variable;

  Status run_session_impl(Status (*invoke)(void*), void* body);

  /// One undo-trail slot: a visited variable and its pre-change state.
  /// Slots are reused across sessions (trail_size_ is the live prefix), so
  /// Value/Justification capacities stay warm.
  struct TrailEntry {
    Variable* var = nullptr;
    Value value;
    Justification justification;
  };

  bool enabled_ = true;
  bool in_propagation_ = false;
  int max_changes_per_variable_ = 1;

  std::vector<std::unique_ptr<Constraint>> constraints_;
  AgendaScheduler agenda_;

  /// Current session stamp; a Variable/Propagatable whose visit_epoch_
  /// equals it is "in the visited dictionary".  Globally unique.
  std::uint64_t epoch_;
  std::vector<TrailEntry> trail_;
  std::size_t trail_size_ = 0;
  std::vector<Propagatable*> visited_constraints_;

  std::vector<std::unique_ptr<std::vector<Propagatable*>>> fanout_pool_;
  std::size_t fanout_depth_ = 0;

  std::optional<ViolationInfo> last_violation_;
  ViolationHandler violation_handler_;
  std::deque<std::string> violation_log_;
  std::size_t violation_log_limit_ = 256;
  std::uint64_t violation_log_dropped_ = 0;

  Stats stats_;
  Tracer tracer_;
  MetricsRegistry metrics_;
};

}  // namespace stemcp::core
