// Relaxation solver (thesis §9.3, future work #4).
//
// Constraint propagation only ever uses local information; when a network
// ends up inconsistent (e.g. after bulk edits with propagation disabled, or
// when a cycle defeats propagation) the thesis points at constraint
// *satisfaction* as the natural extension, citing ThingLab's relaxation
// method.  This solver iteratively repairs free (non-#USER) numeric
// variables, constraint by constraint, Gauss–Seidel style, until every
// constraint is satisfied or the sweep budget is exhausted.
#pragma once

#include <vector>

#include "core/constraint.h"

namespace stemcp::core {

struct RelaxationOptions {
  int max_sweeps = 200;
};

class RelaxationSolver {
 public:
  using Options = RelaxationOptions;

  struct Result {
    bool solved = false;
    int sweeps = 0;            ///< sweeps actually executed
    std::size_t adjustments = 0;  ///< individual variable repairs applied
    std::vector<const Constraint*> unsatisfied;  ///< remaining violations
  };

  /// Attempt to satisfy `constraints` by adjusting free variables.  Values
  /// are applied with propagation disabled (this is a global solve, not a
  /// local propagation); on success the network is left consistent and
  /// re-enabled propagation can resume from it.  #USER values are never
  /// touched.
  static Result solve(PropagationContext& ctx,
                      const std::vector<Constraint*>& constraints,
                      Options options = Options());

  /// Convenience: collect every constraint reachable from the given
  /// variables and solve those.
  static Result solve_around(PropagationContext& ctx,
                             const std::vector<Variable*>& roots,
                             Options options = Options());

  /// Recovery from bulk edits made while propagation was disabled (the gap
  /// the thesis leaves open in §5.3): repair every constraint in the
  /// context, then re-enable propagation.
  static Result recover(PropagationContext& ctx,
                        Options options = Options());
};

}  // namespace stemcp::core
