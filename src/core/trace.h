// Propagation observability (ROADMAP: production-scale instrumentation).
//
// The thesis sells propagation on its ability to explain itself — dependency
// records, justifications, and a warning window (§4.2, ch. 6).  This header
// extends that idea from "why does this value hold" to "what did the engine
// do and how long did it take": structured trace events emitted by the
// propagation engine, pluggable sinks (in-memory ring buffer, JSONL file,
// Chrome trace-event export for chrome://tracing / Perfetto), and a metrics
// registry with counters and log2-bucketed histograms.
//
// Design constraints:
//  * Zero cost when disabled.  Every emission site is guarded by an inlined
//    boolean check; a TraceEvent is a fixed-size POD (label is a truncated
//    in-place copy, never a heap string) so the hot path never allocates.
//  * Single-writer.  The engine is single-threaded per context; the ring
//    buffer uses one atomic write index so concurrent readers (a UI thread
//    snapshotting mid-run) see a consistent prefix.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace stemcp::core {

/// Process-wide monotonic stamp source (never returns the same value twice,
/// never returns 0).  Session epochs, agenda epochs, and metric-registry
/// generations all draw from it, so a stamp taken from one object can never
/// collide with a stamp taken from another — cached handles and epoch marks
/// stay self-validating across contexts, schedulers, and registries.
std::uint64_t next_global_stamp();

// ---------------------------------------------------------------------------
// Trace events

enum class TraceEventType : std::uint8_t {
  kSessionBegin,    ///< run_session entered
  kSessionEnd,      ///< run_session left (label carries the outcome)
  kAssignment,      ///< a variable accepted a value
  kActivation,      ///< propagateVariable: sent to a constraint
  kAgendaSchedule,  ///< entry accepted onto an agenda (priority = queue index)
  kAgendaPop,       ///< entry popped and executed; duration = run time
  kCheck,           ///< final-sweep isSatisfied; duration = check time
  kViolation,       ///< first violation of a session recorded
  kRestore,         ///< a visited variable restored to its saved state
  kNetworkEdit,     ///< constraint created/destroyed or argument add/remove
  kRequestPhase,    ///< one service-request phase span (priority = phase id)
};

const char* to_string(TraceEventType t);

struct TraceEvent {
  static constexpr std::size_t kLabelCapacity = 64;

  TraceEventType type = TraceEventType::kSessionBegin;
  std::uint8_t priority = 0;      ///< agenda queue index where relevant
  std::uint64_t seq = 0;          ///< monotonically increasing per tracer
  std::uint64_t timestamp_ns = 0; ///< steady-clock nanoseconds
  std::uint64_t duration_ns = 0;  ///< span length; 0 for instant events
  const void* subject = nullptr;  ///< constraint/variable identity (never
                                  ///< dereferenced by sinks)
  char label[kLabelCapacity] = {};

  void set_label(std::string_view s);
  std::string_view label_view() const;
};

// ---------------------------------------------------------------------------
// Sinks

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void consume(const TraceEvent& e) = 0;
  virtual void flush() {}
};

/// Fixed-capacity ring that overwrites the oldest event once full.  One
/// atomic write index; snapshot() returns events oldest-first.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 65536);

  void consume(const TraceEvent& e) override;

  std::size_t capacity() const { return buf_.size(); }
  /// Total events ever consumed (monotonic; exceeds capacity after wrap).
  std::uint64_t total_consumed() const {
    return write_.load(std::memory_order_acquire);
  }
  /// Events lost to wraparound.
  std::uint64_t overwritten() const;
  std::size_t size() const;

  /// Copy of the retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;
  void clear();

 private:
  std::vector<TraceEvent> buf_;
  std::atomic<std::uint64_t> write_{0};
};

/// Appends one JSON object per line (JSONL) to a file.  Buffered; flushed on
/// flush() and destruction.
class JsonlFileSink : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  bool ok() const;
  void consume(const TraceEvent& e) override;
  void flush() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Serialize one event as a single-line JSON object (the JSONL row format).
std::string trace_event_to_json(const TraceEvent& e);

// ---------------------------------------------------------------------------
// Tracer

class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The one flag hot paths check (inlined single bool load).
  bool enabled() const { return enabled_; }
  /// Enabling with no sink installed attaches a default ring buffer.
  void set_enabled(bool on);

  void add_sink(std::shared_ptr<TraceSink> sink);
  void clear_sinks();
  /// The default ring buffer, if one was installed (by set_enabled or an
  /// explicit add_sink of a RingBufferSink).  Null otherwise.
  RingBufferSink* ring() const;

  std::uint64_t events_emitted() const { return seq_; }

  /// Build and dispatch one event; no-op while disabled.  `label` is
  /// truncated into the event in place (no allocation).
  void emit(TraceEventType type, std::string_view label,
            const void* subject = nullptr, std::uint64_t duration_ns = 0,
            std::uint8_t priority = 0);

  void flush();

  /// Steady-clock nanoseconds (the timebase of every event).
  static std::uint64_t now_ns();

 private:
  bool enabled_ = false;
  std::uint64_t seq_ = 0;
  std::vector<std::shared_ptr<TraceSink>> sinks_;
  std::shared_ptr<RingBufferSink> default_ring_;
};

// ---------------------------------------------------------------------------
// Chrome trace-event export (chrome://tracing, Perfetto)

/// Write events in Chrome trace-event JSON ("traceEvents" array form).
/// Sessions become B/E duration pairs; checks and agenda runs become
/// complete ("X") spans with their measured duration; everything else is an
/// instant event.
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& out);

/// Convenience: snapshot the tracer's ring buffer and write it to `path`.
/// Returns false when there is no ring sink or the file cannot be opened.
bool export_chrome_trace(const Tracer& tracer, const std::string& path);

// ---------------------------------------------------------------------------
// Metrics

/// Log2-bucketed histogram for nanosecond latencies and queue depths.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  /// Upper-bound estimate of the p-th percentile (0 < p <= 100) from the
  /// bucket boundaries.
  std::uint64_t percentile(double p) const;
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  void merge(const Histogram& other);
  void clear();

  /// Rebuild a histogram from raw parts.  Used by the process-global atomic
  /// aggregation to snapshot its lock-free state into a plain value.
  static Histogram from_parts(const std::array<std::uint64_t, kBuckets>& buckets,
                              std::uint64_t count, std::uint64_t sum,
                              std::uint64_t min, std::uint64_t max);

  /// The log2 bucket a value lands in (shared by the concurrent mirror).
  static std::size_t bucket_index(std::uint64_t value);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Lock-free histogram for concurrent writers: every bucket and summary
/// field is its own atomic, so many threads record() without a value lock.
/// Readers NEVER walk the live atomics to compute percentiles — they take a
/// snapshot() (one coherent load per field, rebuilt through
/// Histogram::from_parts) and do the math on the plain value, so a
/// percentile can never mix bucket counts from two different instants of a
/// concurrent write storm.  This is the telemetry lane primitive (per-worker
/// request-latency histograms, docs/OBSERVABILITY.md) and the slot type of
/// the process-global aggregation below.
class ConcurrentHistogram {
 public:
  /// Allocation-free; safe from any thread.
  void record(std::uint64_t value);
  /// Fold a plain histogram in (the global-aggregation path).
  void merge(const Histogram& h);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Coherent plain-value snapshot; compute percentiles on THIS, not on the
  /// live object.
  Histogram snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, Histogram::kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Named monotonic counters plus named histograms, snapshotable to JSON.
/// Not thread-safe (one registry per engine context); the process-global
/// aggregation helpers below are.
class MetricsRegistry {
 public:
  MetricsRegistry() : generation_(next_global_stamp()) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void add_counter(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t counter(const std::string& name) const;
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  const Histogram* find_histogram(const std::string& name) const;
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  // ---- pre-resolved handles (hot-path recording without string lookups) ---
  //
  // A handle is a stable pointer at the named slot: std::map nodes never
  // move, so it stays valid until clear().  Resolve once (creating the slot
  // if needed), then record through the pointer with no string construction
  // or map walk per event.  clear() destroys all slots and bumps
  // generation(); cache a handle together with the generation it was
  // resolved under and re-resolve on mismatch.  Generations are globally
  // unique stamps, so a handle cached against one registry can never be
  // mistaken for a handle into another.
  std::uint64_t generation() const { return generation_; }
  std::uint64_t* counter_handle(const std::string& name) {
    return &counters_[name];
  }
  Histogram* histogram_handle(const std::string& name) {
    return &histograms_[name];
  }

  void merge(const MetricsRegistry& other);
  void clear();

  /// {"counters":{...},"histograms":{name:{count,sum,min,max,mean,p50,p99}}}
  std::string to_json() const;

 private:
  bool enabled_ = false;
  std::uint64_t generation_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// Process-global registry: engine contexts fold their lifetime statistics
/// into it on destruction so benchmark binaries can emit one machine-readable
/// stats JSON per run, and concurrent design-service sessions aggregate here
/// when they close.  Fully thread-safe: counter values and histogram buckets
/// are atomics, so concurrent merges never serialize on a value lock (a
/// shared mutex guards only the name→slot map shape).
void merge_into_global_metrics(const MetricsRegistry& m);
void add_global_counter(const std::string& name, std::uint64_t delta);
std::string global_metrics_json();
void reset_global_metrics();

// ---------------------------------------------------------------------------
// Prometheus text exposition (docs/OBSERVABILITY.md)

/// Render a registry in the Prometheus text format: counters become
/// `<prefix><name> <value>`, histograms become cumulative `_bucket{le=...}`
/// series over the non-empty log2 buckets plus `_sum` / `_count`.  Metric
/// names are sanitized to [a-zA-Z0-9_:] (dots become underscores).
std::string metrics_to_prometheus(const MetricsRegistry& m,
                                  std::string_view prefix = "stemcp_");

/// The process-global registry in Prometheus text format.
std::string global_metrics_prometheus(std::string_view prefix = "stemcp_");

}  // namespace stemcp::core
