// Trace format for recorded/synthesized design-session traffic (ISSUE 10):
// one timestamped request per line, in the style of persist/journal.cpp —
//
//   T1 <crc32-hex8> <offset-ns> <protocol-request-line>
//
//   * "T1" — format magic + version.
//   * crc32 — CRC-32 (IEEE) of everything AFTER the following space, i.e.
//     of "<offset-ns> <protocol-request-line>", rendered as exactly eight
//     lowercase hex digits.
//   * offset-ns — arrival time in nanoseconds relative to the first record
//     (the first record's offset is 0); offsets are non-decreasing, and a
//     CRC-valid record that goes backwards in time is CORRUPTION, not a torn
//     write — the scanner rejects the file.
//   * protocol-request-line — one request in the `protocol.cpp` grammar
//     (`assign s PIPE/s0.delay(in->out) 1e-9`, ...), parsed back with
//     ServiceFrontEnd::parse.  `load ... file <path>` is rejected: traces
//     must be self-contained, so library text always travels inline in the
//     escaped `text` form.
//
// Scan rules mirror persist::scan_journal exactly: a final line without a
// terminating '\n', or a final line that fails framing/CRC, is a torn tail —
// tolerated, reported via `torn_tail`.  A bad line with ANY valid line after
// it cannot be a torn write and fails the scan with a byte offset.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "service/design_service.h"

namespace stemcp::workload {

/// One trace line: the arrival offset, the canonical protocol text (as
/// written between the CRC header and the newline — kept verbatim so a
/// parse→write round trip is byte-identical), and the parsed request.
struct TraceRecord {
  std::uint64_t offset_ns = 0;
  std::string line;  ///< protocol request text, no trailing newline
  service::Request request;
};

/// Result of scanning a trace file, torn-tail discipline as in
/// persist::JournalScan.
struct TraceScan {
  std::vector<TraceRecord> records;
  bool torn_tail = false;    ///< final line torn/unterminated (tolerated)
  std::string error;         ///< non-empty: corruption, nothing usable after
  std::size_t bytes_scanned = 0;  ///< clean prefix length (truncate point)
};

/// Append one encoded trace line (including the trailing '\n') to `*out`.
/// Validates that `line` is one non-empty newline-free protocol line;
/// does NOT re-parse it (writers render via ServiceFrontEnd::render, which
/// is correct by construction — the strict re-parse belongs to readers).
/// Allocation-free in steady state: appends into `*out`'s existing capacity.
bool encode_trace_line(std::uint64_t offset_ns, std::string_view line,
                       std::string* out, std::string* error = nullptr);

/// Strictly decode one trace line (no trailing newline): framing, CRC,
/// offset, and the embedded request must all parse; `load ... file` forms
/// are rejected.  On success fills `*out` (including the verbatim `line`).
bool decode_trace_line(std::string_view encoded, TraceRecord* out,
                       std::string* error);

/// Scan trace-file contents already in memory.  Never throws; corruption
/// comes back in TraceScan::error with a byte offset.
TraceScan scan_trace_text(const std::string& contents);

/// Read and scan a trace file.  A missing/unreadable file is an error.
TraceScan scan_trace_file(const std::string& path);

/// Buffered trace writer.  NOT thread-safe — the recorder serializes calls
/// under its own mutex (a trace is a total order; see recorder.h).
class TraceWriter {
 public:
  /// Create/truncate `path`; nullptr (with `*error` set) on failure.
  static std::unique_ptr<TraceWriter> open(const std::string& path,
                                           std::string* error);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Append one record.  Enforces non-decreasing offsets (the format
  /// invariant readers reject on) and line well-formedness.  Allocation-free
  /// in steady state: encodes into a reused scratch buffer.
  bool append(std::uint64_t offset_ns, std::string_view line,
              std::string* error = nullptr);
  bool append(const TraceRecord& rec, std::string* error = nullptr) {
    return append(rec.offset_ns, rec.line, error);
  }

  /// Flush and close.  False if any write (including this flush) failed.
  bool finish(std::string* error = nullptr);

  std::uint64_t records() const { return records_; }
  const std::string& path() const { return path_; }

 private:
  explicit TraceWriter(std::string path);

  std::string path_;
  void* file_ = nullptr;  ///< FILE*; void* keeps <cstdio> out of the header
  std::uint64_t records_ = 0;
  std::uint64_t last_offset_ns_ = 0;
  std::string scratch_;
  bool dead_ = false;
};

/// Render a request into `*line` (appends; no trailing newline) using the
/// protocol grammar — thin wrapper over ServiceFrontEnd::render so workload
/// callers need not name the front end.
bool render_request(const service::Request& r, std::string* line,
                    std::string* error = nullptr);

}  // namespace stemcp::workload
