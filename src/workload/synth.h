// Deterministic trace synthesizer (ISSUE 10): turns a small scenario spec
// into a workload trace — seeded xorshift, zipf-skewed session popularity,
// burst/idle arrival phases, a mixed request stream (assign / batch-assign /
// query / edit / select), and session churn — so macro benchmarks replay the
// identical request stream on every run (cf. bench_latency_under_load.cpp,
// whose traffic model this generalizes).
//
// Scenario files are strict line-based key/value text:
//
//   # stemcp-scenario v1
//   name mixed_storm
//   seed 42
//   sessions 8
//   zipf-skew 1.0
//   rate 4000            # base offered rate, requests/second
//   requests 4000        # traffic records to generate (after the prologue)
//   burst 0.25 0.25 6    # on-seconds idle-seconds factor: rate*factor
//                        # during each on-window, base rate when idle
//   mix assign 50 batch-assign 20 query 20 edit 10 select 0
//   churn 0.002          # per-request probability of close+open+load
//   design pipeline      # or: selection (adds generic ADD slots for select)
//
// The first line must be exactly "# stemcp-scenario v1"; later '#' lines and
// blanks are comments; an unknown key is an error (journal-parser strictness).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace stemcp::workload {

struct Scenario {
  std::string name = "scenario";
  std::uint64_t seed = 1;
  int sessions = 8;
  double zipf_skew = 1.0;
  double rate_rps = 2000.0;
  int requests = 2000;
  double burst_on_s = 0.0;
  double burst_idle_s = 0.0;
  double burst_factor = 1.0;
  // Traffic mix weights (relative; need not sum to 100).
  int w_assign = 50;
  int w_batch_assign = 20;
  int w_query = 20;
  int w_edit = 10;
  int w_select = 0;
  double churn = 0.0;
  std::string design = "pipeline";  ///< "pipeline" | "selection"
};

/// The two committed design texts traffic runs against.  `pipeline` is the
/// two-stage PIPE of bench_latency_under_load; `selection` adds the generic
/// ADD slot + realizations of the FD demos so `select` traffic has work.
const char* pipeline_design();
const char* selection_design();
/// The library text a scenario's sessions load.
const char* design_text(const Scenario& sc);

/// Parse scenario text / file.  Strict: bad header, unknown key, or a
/// malformed value is an error naming the line.
bool parse_scenario(const std::string& text, Scenario* out, std::string* error);
bool load_scenario_file(const std::string& path, Scenario* out,
                        std::string* error);
/// Canonical scenario dump (parseable back; used by `stemcp_replay describe`).
std::string scenario_to_string(const Scenario& sc);

/// Generate the trace: a prologue (open+load per session, offset 0), then
/// `requests` traffic records with arrival offsets from the burst/idle rate
/// schedule.  Pure function of the scenario — identical bytes every call.
std::vector<TraceRecord> synthesize(const Scenario& sc);

/// synthesize() straight into a trace file.
bool synthesize_to_file(const Scenario& sc, const std::string& path,
                        std::string* error);

}  // namespace stemcp::workload
