#include "workload/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "persist/journal.h"
#include "service/protocol.h"

namespace stemcp::workload {

namespace {

constexpr std::string_view kMagic = "T1 ";
constexpr std::size_t kCrcDigits = 8;

bool fail(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
  return false;
}

bool is_hex_lower(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

/// "load <sess> file ..." — rejected before ServiceFrontEnd::parse gets a
/// chance to slurp the file: traces must be self-contained.
bool is_load_file_form(std::string_view line) {
  std::istringstream in{std::string(line)};
  std::string verb, session, mode;
  in >> verb >> session >> mode;
  return verb == "load" && mode == "file";
}

}  // namespace

bool render_request(const service::Request& r, std::string* line,
                    std::string* error) {
  return service::ServiceFrontEnd::render(r, line, error);
}

bool encode_trace_line(std::uint64_t offset_ns, std::string_view line,
                       std::string* out, std::string* error) {
  if (line.empty()) return fail(error, "empty request line");
  if (line.find('\n') != std::string_view::npos ||
      line.find('\r') != std::string_view::npos) {
    return fail(error, "request line contains a line break");
  }
  out->append(kMagic);
  const std::size_t crc_at = out->size();
  out->append("00000000 ");  // patched below, once the body is in place
  const std::size_t body_at = out->size();
  char digits[24];
  const int n = std::snprintf(digits, sizeof digits, "%llu",
                              static_cast<unsigned long long>(offset_ns));
  out->append(digits, static_cast<std::size_t>(n));
  out->push_back(' ');
  out->append(line);
  const std::uint32_t crc = persist::crc32(
      std::string_view(out->data() + body_at, out->size() - body_at));
  char hex[kCrcDigits + 1];
  std::snprintf(hex, sizeof hex, "%08x", crc);
  out->replace(crc_at, kCrcDigits, hex, kCrcDigits);
  out->push_back('\n');
  return true;
}

bool decode_trace_line(std::string_view encoded, TraceRecord* out,
                       std::string* error) {
  if (encoded.size() < kMagic.size() ||
      encoded.substr(0, kMagic.size()) != kMagic) {
    return fail(error, "bad magic (want 'T1 ')");
  }
  std::string_view rest = encoded.substr(kMagic.size());
  if (rest.size() < kCrcDigits + 1 || rest[kCrcDigits] != ' ') {
    return fail(error, "truncated CRC field");
  }
  std::uint32_t want = 0;
  for (std::size_t i = 0; i < kCrcDigits; ++i) {
    const char c = rest[i];
    if (!is_hex_lower(c)) return fail(error, "CRC is not 8 lowercase hex digits");
    want = want * 16 + static_cast<std::uint32_t>(
                           c <= '9' ? c - '0' : c - 'a' + 10);
  }
  const std::string_view body = rest.substr(kCrcDigits + 1);
  if (persist::crc32(body) != want) return fail(error, "CRC mismatch");

  // <offset-ns> <request-line>
  std::size_t i = 0;
  std::uint64_t offset = 0;
  while (i < body.size() && body[i] >= '0' && body[i] <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(body[i] - '0');
    if (offset > (UINT64_MAX - digit) / 10) {
      return fail(error, "arrival offset overflows 64 bits");
    }
    offset = offset * 10 + digit;
    ++i;
  }
  if (i == 0) return fail(error, "missing arrival offset");
  if (i >= body.size() || body[i] != ' ') {
    return fail(error, "missing request line after offset");
  }
  const std::string_view line = body.substr(i + 1);
  if (line.empty()) return fail(error, "empty request line");
  if (is_load_file_form(line)) {
    return fail(error,
                "'load ... file' is not allowed in traces (library text "
                "must travel inline)");
  }
  service::Request req;
  std::string perr;
  if (!service::ServiceFrontEnd::parse(std::string(line), &req, &perr)) {
    return fail(error, "bad request line: " + perr);
  }
  out->offset_ns = offset;
  out->line.assign(line);
  out->request = std::move(req);
  return true;
}

TraceScan scan_trace_text(const std::string& contents) {
  TraceScan scan;
  std::size_t pos = 0;
  while (pos < contents.size()) {
    const std::size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      // Unterminated final line: a torn write, tolerated (journal rule).
      scan.torn_tail = true;
      break;
    }
    TraceRecord rec;
    std::string derr;
    const std::string_view line(contents.data() + pos, nl - pos);
    if (!decode_trace_line(line, &rec, &derr)) {
      if (contents.find('\n', nl + 1) == std::string::npos) {
        // A bad record as the very last line could be a torn write whose
        // tail happened to include '\n' garbage — tolerated, like the
        // journal scanner.
        scan.torn_tail = true;
        break;
      }
      scan.error = "trace corrupt at byte " + std::to_string(pos) + ": " + derr;
      return scan;
    }
    if (!scan.records.empty() && rec.offset_ns < scan.records.back().offset_ns) {
      // A CRC-valid record cannot be a partial write, so time going
      // backwards is corruption no matter where it sits.
      scan.error = "trace disordered at byte " + std::to_string(pos) +
                   ": offset " + std::to_string(rec.offset_ns) +
                   " goes backwards (previous " +
                   std::to_string(scan.records.back().offset_ns) + ")";
      return scan;
    }
    scan.records.push_back(std::move(rec));
    pos = nl + 1;
    scan.bytes_scanned = pos;
  }
  return scan;
}

TraceScan scan_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    TraceScan scan;
    scan.error = "cannot read trace '" + path + "'";
    return scan;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return scan_trace_text(buf.str());
}

TraceWriter::TraceWriter(std::string path) : path_(std::move(path)) {}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

std::unique_ptr<TraceWriter> TraceWriter::open(const std::string& path,
                                               std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open trace '" + path + "' for write";
    return nullptr;
  }
  std::unique_ptr<TraceWriter> w(new TraceWriter(path));
  w->file_ = f;
  return w;
}

bool TraceWriter::append(std::uint64_t offset_ns, std::string_view line,
                         std::string* error) {
  if (dead_ || file_ == nullptr) {
    return fail(error, "trace writer is closed");
  }
  if (records_ > 0 && offset_ns < last_offset_ns_) {
    return fail(error, "arrival offsets must be non-decreasing");
  }
  scratch_.clear();
  if (!encode_trace_line(offset_ns, line, &scratch_, error)) return false;
  if (std::fwrite(scratch_.data(), 1, scratch_.size(),
                  static_cast<std::FILE*>(file_)) != scratch_.size()) {
    dead_ = true;
    return fail(error, "short write to trace '" + path_ + "'");
  }
  last_offset_ns_ = offset_ns;
  ++records_;
  return true;
}

bool TraceWriter::finish(std::string* error) {
  if (file_ == nullptr) return fail(error, "trace writer is closed");
  std::FILE* f = static_cast<std::FILE*>(file_);
  file_ = nullptr;
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (dead_) return fail(error, "trace '" + path_ + "' had a failed write");
  if (!flushed || !closed) {
    return fail(error, "flush/close of trace '" + path_ + "' failed");
  }
  return true;
}

}  // namespace stemcp::workload
