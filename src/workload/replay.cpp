#include "workload/replay.h"

#include <chrono>
#include <deque>
#include <future>
#include <set>
#include <sstream>
#include <thread>

#include "service/design_service.h"
#include "service/telemetry.h"

namespace stemcp::workload {

namespace {

using service::DesignService;
using service::Request;
using service::RequestType;
using service::Response;

/// Submissions stay ahead of responses by at most this many in-flight
/// futures — enough to keep every shard queue fed, bounded so a long trace
/// cannot hold every response alive at once.
constexpr std::size_t kMaxInflight = 4096;

void tally(const Response& resp, ReplayReport* report) {
  if (resp.ok) {
    ++report->ok;
    if (resp.violation) ++report->violations;
  } else {
    ++report->errors;
  }
}

}  // namespace

bool replay_records(const std::vector<TraceRecord>& records,
                    const ReplayOptions& opts, ReplayReport* report,
                    std::string* error) {
  *report = ReplayReport{};
  if (records.empty()) {
    if (error != nullptr) *error = "trace has no records";
    return false;
  }
  DesignService svc(DesignService::Config{opts.workers_per_shard, opts.shards,
                                          opts.journal_root});
  if (opts.recorder != nullptr) svc.set_request_tap(opts.recorder->tap());

  // Sessions the trace leaves open — the image-collection set.  Tracked
  // from the trace's own lifecycle verbs (the live run and the replay see
  // the identical stream, so both compute the identical set).
  std::set<std::string> open_sessions;
  std::deque<std::future<Response>> inflight;
  auto drain_one = [&inflight, report] {
    tally(inflight.front().get(), report);
    inflight.pop_front();
  };
  auto submit = [&](Request req) {
    inflight.push_back(svc.submit(std::move(req)));
    if (inflight.size() > kMaxInflight) drain_one();
  };

  const double speed = opts.speed > 0.0 ? opts.speed : 1.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const TraceRecord& rec : records) {
    if (!opts.closed_loop) {
      // Absolute deadline off the recorded arrival: never reschedule off
      // the previous submit, so a slow stretch cannot quietly lower the
      // offered rate (coordinated omission).
      const auto deadline =
          t0 + std::chrono::nanoseconds(static_cast<std::int64_t>(
                   static_cast<double>(rec.offset_ns) / speed));
      std::this_thread::sleep_until(deadline);
    }
    switch (rec.request.type) {
      case RequestType::kOpen:
      case RequestType::kRecover:
        open_sessions.insert(rec.request.session);
        break;
      case RequestType::kClose:
        open_sessions.erase(rec.request.session);
        break;
      default:
        break;
    }
    const bool opened = rec.request.type == RequestType::kOpen;
    const std::string session = rec.request.session;
    submit(rec.request);
    ++report->requests;
    if (opened && !opts.journal_base.empty()) {
      // Per-shard FIFO with one worker: this lands right after the open,
      // before any traffic the trace sends at the session.
      submit(Request{RequestType::kJournal, session,
                     opts.journal_base + "_" + session + " " +
                         opts.journal_spec,
                     {}});
      ++report->journals_attached;
    }
  }
  while (!inflight.empty()) drain_one();
  report->wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report->offered_s =
      static_cast<double>(records.back().offset_ns) / 1e9 / speed;

  // Detach the tap BEFORE collecting images: the oracle's own save requests
  // are harness machinery, not traffic, and must not end up in the trace.
  if (opts.recorder != nullptr) svc.set_request_tap({});
  if (opts.collect_images) {
    for (const std::string& session : open_sessions) {
      Response resp = svc.call(Request{RequestType::kSave, session, {}, {}});
      // A failed save still lands in the image map: the oracle should see
      // "error: ..." diverge loudly rather than silently skip a session.
      report->images[session] = resp.ok ? resp.text : "error: " + resp.error;
    }
  }
  report->telemetry = svc.telemetry().fold();
  return true;
}

bool replay_file(const std::string& path, const ReplayOptions& opts,
                 ReplayReport* report, std::string* error) {
  TraceScan scan = scan_trace_file(path);
  if (!scan.error.empty()) {
    if (error != nullptr) *error = scan.error;
    return false;
  }
  return replay_records(scan.records, opts, report, error);
}

bool verify_images(const std::map<std::string, std::string>& got,
                   const std::map<std::string, std::string>& want,
                   std::string* diff) {
  for (const auto& [session, image] : want) {
    const auto it = got.find(session);
    if (it == got.end()) {
      if (diff != nullptr) *diff = "session '" + session + "' missing from replay";
      return false;
    }
    if (it->second != image) {
      std::size_t at = 0;
      const std::size_t n = std::min(it->second.size(), image.size());
      while (at < n && it->second[at] == image[at]) ++at;
      if (diff != nullptr) {
        *diff = "session '" + session + "' image diverges at byte " +
                std::to_string(at) + " (got " +
                std::to_string(it->second.size()) + " byte(s), want " +
                std::to_string(image.size()) + ")";
      }
      return false;
    }
  }
  for (const auto& [session, image] : got) {
    (void)image;
    if (want.find(session) == want.end()) {
      if (diff != nullptr) {
        *diff = "session '" + session + "' present in replay but not in reference";
      }
      return false;
    }
  }
  return true;
}

std::string ReplayReport::render() const {
  std::ostringstream out;
  out << requests << " request(s): " << ok << " ok, " << errors
      << " error(s), " << violations << " violation(s)";
  if (journals_attached > 0) {
    out << ", " << journals_attached << " journal(s) attached";
  }
  out << '\n';
  char line[160];
  std::snprintf(line, sizeof line,
                "wall %.3f s (%.0f req/s achieved), trace span %.3f s\n",
                wall_s, achieved_rps(), offered_s);
  out << line;
  static const char* kPhases[] = {"total",   "queue", "lock",
                                  "propagate", "journal", "fsync"};
  out << "phase        p50_ns      p90_ns      p99_ns\n";
  for (const char* phase : kPhases) {
    const core::Histogram* h =
        telemetry.find_histogram(std::string("svc.lat.") + phase + "_ns");
    if (h == nullptr) continue;
    std::snprintf(line, sizeof line, "%-10s %9llu %11llu %11llu\n", phase,
                  static_cast<unsigned long long>(h->percentile(50)),
                  static_cast<unsigned long long>(h->percentile(90)),
                  static_cast<unsigned long long>(h->percentile(99)));
    out << line;
  }
  return out.str();
}

}  // namespace stemcp::workload
