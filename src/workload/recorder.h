// Live-traffic recorder (ISSUE 10): taps DesignService request dispatch and
// writes every submitted request to a trace file, timestamped relative to
// the first record.  Discipline of telemetry.cpp: armed behind a flag (the
// service pays one relaxed atomic load when no tap is installed) and
// allocation-free on the hot path in steady state — rendering and framing
// reuse member scratch buffers whose capacity sticks after the first few
// records (proven by the operator-new counter in tests/core/hotpath_test.cpp).
//
// Usage:
//   auto rec = TraceRecorder::open("run.trace", &err);
//   svc.set_request_tap(rec->tap());
//   ... live traffic ...
//   svc.set_request_tap({});        // detach FIRST — the tap holds `rec`
//   rec->finish(&err);
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "service/design_service.h"
#include "workload/trace.h"

namespace stemcp::workload {

class TraceRecorder {
 public:
  struct Stats {
    std::uint64_t records = 0;  ///< lines written
    std::uint64_t drops = 0;    ///< unrenderable requests / writes past death
  };

  /// Create/truncate the trace at `path`; nullptr (with `*error`) on failure.
  static std::unique_ptr<TraceRecorder> open(const std::string& path,
                                             std::string* error);

  /// Record one request.  Thread-safe; the mutex makes the trace a total
  /// order.  The clock is read UNDER the lock, so offsets are monotone by
  /// construction.  Requests that cannot round-trip through the protocol
  /// grammar (and everything after a failed write) are counted as drops,
  /// never errors — recording must not perturb live traffic.
  void record(const service::Request& r);

  /// The function to hand to DesignService::set_request_tap.  Captures
  /// `this`: detach the tap before destroying the recorder.
  service::DesignService::RequestTap tap() {
    return [this](const service::Request& r) { record(r); };
  }

  /// Flush and close the trace.  False if any write failed (drops > 0 from
  /// unrenderable requests alone does not fail the finish).
  bool finish(std::string* error = nullptr);

  Stats stats() const;
  const std::string& path() const { return writer_->path(); }

 private:
  explicit TraceRecorder(std::unique_ptr<TraceWriter> writer)
      : writer_(std::move(writer)) {}

  mutable std::mutex mu_;
  std::unique_ptr<TraceWriter> writer_;
  bool started_ = false;
  bool dead_ = false;
  std::uint64_t t0_ns_ = 0;
  std::uint64_t last_offset_ns_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t drops_ = 0;
  std::string line_scratch_;
};

}  // namespace stemcp::workload
