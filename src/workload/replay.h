// Trace replayer (ISSUE 10): drives a fresh DesignService with a recorded or
// synthesized trace, either open-loop (absolute-deadline arrivals honoring
// the recorded offsets, scaled by `speed` — the coordinated-omission-safe
// methodology of bench_latency_under_load.cpp) or closed-loop (as fast as
// the service absorbs, the throughput arm).  Folds the service's own
// per-phase telemetry into a ReplayReport, and can collect each surviving
// session's save image so a recorded trace doubles as a correctness oracle:
// replaying it into a fresh journaled service must reproduce the live run's
// images byte-identically (tests/workload/replay_test.cpp gates the build on
// this).
//
// Determinism contract: per-session request order is the per-shard FIFO
// order, preserved end-to-end only when each shard has ONE worker — the
// default here, as in the latency bench.  More workers make the replay a
// load generator, not an oracle.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/trace.h"
#include "workload/recorder.h"
#include "workload/trace.h"

namespace stemcp::workload {

struct ReplayOptions {
  bool closed_loop = false;  ///< ignore offsets, submit as fast as possible
  double speed = 1.0;        ///< open-loop time scale (2.0 = twice as fast)
  std::size_t shards = 1;
  std::size_t workers_per_shard = 1;  ///< >1 forfeits replay determinism
  /// Non-empty: every session the trace opens is journaled to
  /// "<journal_base>_<session>" right after its open, making the replay a
  /// durable run whose journals can themselves be recovered and compared.
  std::string journal_base;
  std::string journal_spec = "every-record";
  std::string journal_root;  ///< DesignService::Config::journal_root
  bool collect_images = true;  ///< save every still-open session at the end
  /// Non-null: record this run's live traffic (the `record` subcommand —
  /// synthesized arrivals in, measured offsets out).  The replayer attaches
  /// the tap before the first request and detaches it after the last.
  TraceRecorder* recorder = nullptr;
};

struct ReplayReport {
  std::uint64_t requests = 0;    ///< trace records submitted
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t violations = 0;  ///< successful requests reporting a violation
  std::uint64_t journals_attached = 0;  ///< injected by `journal_base`
  double wall_s = 0.0;     ///< first submit → last response
  double offered_s = 0.0;  ///< trace duration / speed (open loop)
  /// session → save image, for the byte-identical oracle.
  std::map<std::string, std::string> images;
  /// The service's folded per-phase telemetry (svc.lat.*_ns histograms).
  core::MetricsRegistry telemetry;

  double achieved_rps() const {
    return wall_s > 0.0 ? static_cast<double>(requests) / wall_s : 0.0;
  }
  /// Human-readable summary: counts, rates, per-phase p50/p90/p99 table.
  std::string render() const;
};

/// Replay parsed records.  False (with `*error`) only for harness-level
/// failures (nothing to replay); request-level errors are counted in the
/// report — a trace that legitimately contains failing requests replays them
/// faithfully.
bool replay_records(const std::vector<TraceRecord>& records,
                    const ReplayOptions& opts, ReplayReport* report,
                    std::string* error);

/// Scan (strictly — corruption fails, a torn tail is tolerated) and replay
/// a trace file.
bool replay_file(const std::string& path, const ReplayOptions& opts,
                 ReplayReport* report, std::string* error);

/// Compare two image sets byte-for-byte.  On mismatch fills `*diff` with a
/// one-line description of the first divergence (missing session, first
/// differing byte) and returns false.
bool verify_images(const std::map<std::string, std::string>& got,
                   const std::map<std::string, std::string>& want,
                   std::string* diff);

}  // namespace stemcp::workload
