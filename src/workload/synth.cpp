#include "workload/synth.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace stemcp::workload {

namespace {

using service::Request;
using service::RequestType;

// The PIPE design of bench_latency_under_load: two STAGE subcells under a
// parent delay spec, so assigns propagate and can violate.
const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 1
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

// The generic-adder selection design of the FD demos (thesis §8), appended
// to the pipeline cells so one library serves every verb in the mix.
const char* kSelectionExtra = R"(cell ADD generic
  signal a input
  signal out output
  delay a out
end
cell ADD.RC super ADD
  bbox 0 0 8 10
  signal a input
  signal out output
  delay a out value 8e-9
end
cell ADD.CS super ADD
  bbox 0 0 8 22
  signal a input
  signal out output
  delay a out value 5e-9
end
cell ALU
  signal a input
  signal out output
  delay a out
    spec <= 6e-9
  subcell add ADD R0 0 0
  net n_in
    io a
    conn add a
  net n_out
    conn add out
    io out
end
)";

/// Deterministic xorshift64 (bench_latency_under_load's generator, seedable).
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed ^ 0x9E3779B97F4A7C15ull) {
    if (s == 0) s = 0x9E3779B97F4A7C15ull;
  }
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

bool fail(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
  return false;
}

std::string session_name(int k) { return "w" + std::to_string(k); }

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

Request make(RequestType t, std::string session, std::string text = {}) {
  Request r;
  r.type = t;
  r.session = std::move(session);
  r.text = std::move(text);
  return r;
}

/// Offered rate at elapsed time t: base rate, multiplied by the burst
/// factor inside each on-window of the on/idle cycle.
double rate_at(const Scenario& sc, double t_s) {
  if (sc.burst_on_s <= 0.0 || sc.burst_factor == 1.0) return sc.rate_rps;
  const double cycle = sc.burst_on_s + sc.burst_idle_s;
  if (cycle <= 0.0) return sc.rate_rps;
  const double pos = std::fmod(t_s, cycle);
  return pos < sc.burst_on_s ? sc.rate_rps * sc.burst_factor : sc.rate_rps;
}

}  // namespace

const char* pipeline_design() { return kPipeline; }

const char* selection_design() {
  static const std::string combined = std::string(kPipeline) + kSelectionExtra;
  return combined.c_str();
}

const char* design_text(const Scenario& sc) {
  return sc.design == "selection" ? selection_design() : pipeline_design();
}

bool parse_scenario(const std::string& text, Scenario* out,
                    std::string* error) {
  *out = Scenario{};
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (lineno == 1) {
      if (line != "# stemcp-scenario v1") {
        return fail(error,
                    "scenario line 1: expected header '# stemcp-scenario v1'");
      }
      saw_header = true;
      continue;
    }
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ln(line);
    std::string key;
    ln >> key;
    const std::string at = "scenario line " + std::to_string(lineno) + ": ";
    if (key == "name") {
      if (!(ln >> out->name)) return fail(error, at + "name needs a token");
    } else if (key == "seed") {
      if (!(ln >> out->seed)) return fail(error, at + "seed needs an integer");
    } else if (key == "sessions") {
      if (!(ln >> out->sessions) || out->sessions < 1) {
        return fail(error, at + "sessions needs an integer >= 1");
      }
    } else if (key == "zipf-skew") {
      if (!(ln >> out->zipf_skew) || out->zipf_skew < 0.0) {
        return fail(error, at + "zipf-skew needs a number >= 0");
      }
    } else if (key == "rate") {
      if (!(ln >> out->rate_rps) || out->rate_rps <= 0.0) {
        return fail(error, at + "rate needs a number > 0");
      }
    } else if (key == "requests") {
      if (!(ln >> out->requests) || out->requests < 1) {
        return fail(error, at + "requests needs an integer >= 1");
      }
    } else if (key == "burst") {
      if (!(ln >> out->burst_on_s >> out->burst_idle_s >> out->burst_factor) ||
          out->burst_on_s < 0.0 || out->burst_idle_s < 0.0 ||
          out->burst_factor <= 0.0) {
        return fail(error, at + "burst needs <on-s> <idle-s> <factor>");
      }
    } else if (key == "mix") {
      out->w_assign = out->w_batch_assign = out->w_query = out->w_edit =
          out->w_select = 0;
      std::string verb;
      int weight = 0;
      bool any = false;
      while (ln >> verb) {
        if (!(ln >> weight) || weight < 0) {
          return fail(error, at + "mix '" + verb + "' needs a weight >= 0");
        }
        any = true;
        if (verb == "assign") {
          out->w_assign = weight;
        } else if (verb == "batch-assign") {
          out->w_batch_assign = weight;
        } else if (verb == "query") {
          out->w_query = weight;
        } else if (verb == "edit") {
          out->w_edit = weight;
        } else if (verb == "select") {
          out->w_select = weight;
        } else {
          return fail(error, at + "unknown mix verb '" + verb + "'");
        }
      }
      if (!any) return fail(error, at + "mix needs <verb> <weight> pairs");
    } else if (key == "churn") {
      if (!(ln >> out->churn) || out->churn < 0.0 || out->churn > 1.0) {
        return fail(error, at + "churn needs a probability in [0, 1]");
      }
    } else if (key == "design") {
      if (!(ln >> out->design) ||
          (out->design != "pipeline" && out->design != "selection")) {
        return fail(error, at + "design must be 'pipeline' or 'selection'");
      }
    } else {
      return fail(error, at + "unknown key '" + key + "'");
    }
    std::string extra;
    if (ln >> extra) {
      return fail(error, at + "trailing token '" + extra + "'");
    }
  }
  if (!saw_header) {
    return fail(error, "scenario line 1: expected header '# stemcp-scenario v1'");
  }
  if (out->w_assign + out->w_batch_assign + out->w_query + out->w_edit +
          out->w_select <= 0) {
    return fail(error, "scenario: mix weights sum to zero");
  }
  if (out->w_select > 0 && out->design != "selection") {
    return fail(error,
                "scenario: 'mix select' needs 'design selection' (the "
                "pipeline design has no generic slots)");
  }
  return true;
}

bool load_scenario_file(const std::string& path, Scenario* out,
                        std::string* error) {
  std::ifstream f(path);
  if (!f.good()) {
    return fail(error, "cannot read scenario '" + path + "'");
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_scenario(buf.str(), out, error);
}

std::string scenario_to_string(const Scenario& sc) {
  std::ostringstream out;
  out << "# stemcp-scenario v1\n"
      << "name " << sc.name << '\n'
      << "seed " << sc.seed << '\n'
      << "sessions " << sc.sessions << '\n'
      << "zipf-skew " << fmt_double(sc.zipf_skew) << '\n'
      << "rate " << fmt_double(sc.rate_rps) << '\n'
      << "requests " << sc.requests << '\n'
      << "burst " << fmt_double(sc.burst_on_s) << ' '
      << fmt_double(sc.burst_idle_s) << ' ' << fmt_double(sc.burst_factor)
      << '\n'
      << "mix assign " << sc.w_assign << " batch-assign " << sc.w_batch_assign
      << " query " << sc.w_query << " edit " << sc.w_edit << " select "
      << sc.w_select << '\n'
      << "churn " << fmt_double(sc.churn) << '\n'
      << "design " << sc.design << '\n';
  return out.str();
}

std::vector<TraceRecord> synthesize(const Scenario& sc) {
  std::vector<TraceRecord> records;
  records.reserve(static_cast<std::size_t>(sc.requests) +
                  static_cast<std::size_t>(sc.sessions) * 2 + 16);
  const char* design = design_text(sc);
  auto emit = [&records](std::uint64_t offset_ns, Request req) {
    TraceRecord rec;
    rec.offset_ns = offset_ns;
    rec.request = std::move(req);
    std::string err;
    if (!render_request(rec.request, &rec.line, &err)) {
      // Every request this generator builds is renderable by construction.
      return;
    }
    records.push_back(std::move(rec));
  };

  // Prologue: every session opened and loaded at t=0 (not part of the timed
  // traffic — the replayer fires offset-0 records immediately).
  for (int k = 0; k < sc.sessions; ++k) {
    emit(0, make(RequestType::kOpen, session_name(k)));
    emit(0, make(RequestType::kLoad, session_name(k), design));
  }

  // Zipf-ish popularity, generalized from bench_latency_under_load:
  // session k draws with weight 1e6 / (k+1)^skew.
  std::vector<std::uint64_t> cumulative;
  cumulative.reserve(static_cast<std::size_t>(sc.sessions));
  std::uint64_t total_weight = 0;
  for (int k = 0; k < sc.sessions; ++k) {
    const double w = 1e6 / std::pow(static_cast<double>(k + 1), sc.zipf_skew);
    total_weight += w < 1.0 ? 1 : static_cast<std::uint64_t>(w);
    cumulative.push_back(total_weight);
  }
  auto pick_session = [&cumulative, total_weight](Rng& rng) {
    const std::uint64_t roll = rng.below(total_weight);
    for (std::size_t k = 0; k < cumulative.size(); ++k) {
      if (roll < cumulative[k]) return static_cast<int>(k);
    }
    return 0;
  };

  const std::uint64_t mix_total = static_cast<std::uint64_t>(
      sc.w_assign + sc.w_batch_assign + sc.w_query + sc.w_edit + sc.w_select);
  Rng rng(sc.seed);
  double t_ns = 0.0;
  double value = 1e-9;
  int emitted = 0;
  const std::uint64_t churn_scale = 1000000;
  const std::uint64_t churn_cut =
      static_cast<std::uint64_t>(sc.churn * static_cast<double>(churn_scale));
  while (emitted < sc.requests) {
    const std::uint64_t at = static_cast<std::uint64_t>(t_ns);
    const std::string name = session_name(pick_session(rng));
    if (churn_cut > 0 && rng.below(churn_scale) < churn_cut) {
      // Session churn: drop and rebuild the picked session in place.  The
      // three records share one arrival — a churn event is one burst of work.
      emit(at, make(RequestType::kClose, name));
      emit(at, make(RequestType::kOpen, name));
      emit(at, make(RequestType::kLoad, name, design));
      emitted += 3;
    } else {
      const std::uint64_t roll = rng.below(mix_total);
      if (roll < static_cast<std::uint64_t>(sc.w_assign)) {
        value += 1e-9;  // a new value every wave (one-value-change rule)
        Request r = make(RequestType::kAssign, name);
        r.assignments.push_back({"PIPE/s0.delay(in->out)", value});
        emit(at, std::move(r));
      } else if (roll < static_cast<std::uint64_t>(sc.w_assign +
                                                   sc.w_batch_assign)) {
        value += 1e-9;
        Request r = make(RequestType::kBatchAssign, name);
        r.assignments.push_back({"PIPE/s0.delay(in->out)", value});
        r.assignments.push_back({"PIPE/s1.delay(in->out)", value});
        emit(at, std::move(r));
      } else if (roll < static_cast<std::uint64_t>(
                            sc.w_assign + sc.w_batch_assign + sc.w_query)) {
        emit(at, make(RequestType::kQuery, name, "PIPE.delay(in->out)"));
      } else if (roll < static_cast<std::uint64_t>(sc.w_assign +
                                                   sc.w_batch_assign +
                                                   sc.w_query + sc.w_edit)) {
        value += 1e-9;
        emit(at, make(RequestType::kEdit, name,
                      "leaf-delay STAGE in out " + fmt_double(value)));
      } else {
        emit(at, make(RequestType::kSelect, name, "ALU limit 4"));
      }
      ++emitted;
    }
    t_ns += 1e9 / rate_at(sc, t_ns / 1e9);
  }
  return records;
}

bool synthesize_to_file(const Scenario& sc, const std::string& path,
                        std::string* error) {
  const std::vector<TraceRecord> records = synthesize(sc);
  std::unique_ptr<TraceWriter> writer = TraceWriter::open(path, error);
  if (writer == nullptr) return false;
  for (const TraceRecord& rec : records) {
    if (!writer->append(rec, error)) return false;
  }
  return writer->finish(error);
}

}  // namespace stemcp::workload
