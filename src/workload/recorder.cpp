#include "workload/recorder.h"

#include <algorithm>

#include "core/trace.h"

namespace stemcp::workload {

std::unique_ptr<TraceRecorder> TraceRecorder::open(const std::string& path,
                                                   std::string* error) {
  std::unique_ptr<TraceWriter> writer = TraceWriter::open(path, error);
  if (writer == nullptr) return nullptr;
  return std::unique_ptr<TraceRecorder>(new TraceRecorder(std::move(writer)));
}

void TraceRecorder::record(const service::Request& r) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) {
    ++drops_;
    return;
  }
  const std::uint64_t now = core::Tracer::now_ns();
  if (!started_) {
    started_ = true;
    t0_ns_ = now;
  }
  // now >= t0 by the mutex (steady clock, reads ordered by the lock), but
  // clamp anyway — a non-monotone record would poison the whole file.
  const std::uint64_t offset =
      std::max(now >= t0_ns_ ? now - t0_ns_ : 0, last_offset_ns_);
  line_scratch_.clear();
  if (!render_request(r, &line_scratch_, nullptr)) {
    ++drops_;
    return;
  }
  if (!writer_->append(offset, line_scratch_, nullptr)) {
    // A failed write dead-latches the recorder (journal discipline): better
    // a short trace than one with a hole in the middle.
    dead_ = true;
    ++drops_;
    return;
  }
  last_offset_ns_ = offset;
  ++records_;
}

bool TraceRecorder::finish(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool write_failed = dead_;
  dead_ = true;  // drop anything recorded after finish
  const bool closed = writer_->finish(error);
  if (write_failed) {
    if (error != nullptr && error->empty()) {
      *error = "trace recording had failed writes";
    }
    return false;
  }
  return closed;
}

TraceRecorder::Stats TraceRecorder::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{records_, drops_};
}

}  // namespace stemcp::workload
