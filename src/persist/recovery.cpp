#include "persist/recovery.h"

namespace stemcp::persist {

RecoveredLog load_recovered_log(const std::string& base) {
  RecoveredLog log;

  std::string ckpt;
  std::string read_error;
  if (read_file(checkpoint_path(base), &ckpt, &read_error)) {
    if (!parse_checkpoint_header(ckpt, &log.meta)) {
      log.error = "checkpoint '" + checkpoint_path(base) +
                  "' has no valid stemcp-checkpoint header";
      return log;
    }
    log.has_checkpoint = true;
    const std::size_t nl = ckpt.find('\n');
    log.checkpoint_text = nl == std::string::npos ? "" : ckpt.substr(nl + 1);
  }

  // Segment-aware: sealed <base>.journal.<n> segments (scanned in
  // parallel) followed by the active file, seq-checked at the seams.
  log.scan = scan_journal_segments(journal_path(base));
  if (!log.scan.ok()) {
    log.error = log.scan.error;
    return log;
  }
  for (const JournalRecord& r : log.scan.records) {
    if (!log.has_checkpoint || r.seq > log.meta.seq) log.replay.push_back(r);
  }
  log.ok = true;
  return log;
}

}  // namespace stemcp::persist
