#include "persist/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace stemcp::persist {

bool atomic_write_file(const std::string& path, const std::string& contents,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot write '" + tmp + "': " + std::strerror(errno);
    }
    return false;
  }
  std::size_t done = 0;
  while (done < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + done, contents.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = "write to '" + tmp + "' failed: " + std::strerror(errno);
      }
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  // The data must be on disk BEFORE the rename publishes it, else a crash
  // could expose a renamed-but-empty file.
  if (::fsync(fd) != 0) {
    if (error != nullptr) {
      *error = "fsync of '" + tmp + "' failed: " + std::strerror(errno);
    }
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename '" + tmp + "' -> '" + path +
               "' failed: " + std::strerror(errno);
    }
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot read '" + path + "'";
    return false;
  }
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return true;
}

bool ensure_directories(const std::string& path, std::string* error) {
  if (path.empty()) return true;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    pos = path.find('/', pos + 1);
    const std::string prefix = path.substr(0, pos);
    if (prefix.empty() || prefix == "/" || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      if (error != nullptr) {
        *error = "mkdir '" + prefix + "' failed: " + std::strerror(errno);
      }
      return false;
    }
  }
  return true;
}

std::string checkpoint_path(const std::string& base) { return base + ".ckpt"; }
std::string journal_path(const std::string& base) { return base + ".journal"; }

std::string encode_checkpoint_header(const CheckpointMeta& meta) {
  std::ostringstream out;
  out << "# stemcp-checkpoint seq " << meta.seq << " session " << meta.session
      << " options";
  if (!meta.options.empty()) out << ' ' << meta.options;
  out << '\n';
  return out.str();
}

bool parse_checkpoint_header(const std::string& text, CheckpointMeta* out) {
  *out = CheckpointMeta{};
  const std::size_t nl = text.find('\n');
  const std::string first = text.substr(0, nl);
  std::istringstream in(first);
  std::string hash, magic, kw_seq, kw_session, kw_options;
  if (!(in >> hash >> magic >> kw_seq >> out->seq >> kw_session >>
        out->session >> kw_options) ||
      hash != "#" || magic != "stemcp-checkpoint" || kw_seq != "seq" ||
      kw_session != "session" || kw_options != "options") {
    return false;
  }
  std::string opts;
  std::getline(in, opts);
  if (!opts.empty() && opts.front() == ' ') opts.erase(0, 1);
  out->options = opts;
  return true;
}

bool write_checkpoint(const std::string& path, const CheckpointMeta& meta,
                      const std::string& library_text, std::string* error) {
  return atomic_write_file(path, encode_checkpoint_header(meta) + library_text,
                           error);
}

}  // namespace stemcp::persist
