#include "persist/journal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/trace.h"
#include "persist/io_backend.h"

namespace stemcp::persist {

namespace {

constexpr std::uint64_t kNoLimit = ~0ull;

/// Escape so any payload fits one space-delimited, single-line field run.
std::string escape_text(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_text(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out.push_back(s[i] == 'n' ? '\n' : s[i]);
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

/// fsync the directory containing `path` so a rename within it is durable.
bool sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return false;
  const bool ok = ::fsync(dfd) == 0;
  ::close(dfd);
  return ok;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* to_string(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kEveryRecord: return "every-record";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kGroupCommit: return "group-commit";
  }
  return "?";
}

bool fsync_policy_from(const std::string& s, FsyncPolicy* out) {
  if (s == "every-record") {
    *out = FsyncPolicy::kEveryRecord;
  } else if (s == "interval") {
    *out = FsyncPolicy::kInterval;
  } else if (s == "none") {
    *out = FsyncPolicy::kNone;
  } else if (s == "group-commit") {
    *out = FsyncPolicy::kGroupCommit;
  } else {
    return false;
  }
  return true;
}

std::string encode_record(const JournalRecord& r) {
  std::ostringstream body;
  body << r.seq << ' ' << r.op << ' ' << r.session << ' ' << r.justification
       << ' ' << (r.violation ? "violation" : "ok") << ' ' << r.applied << ' '
       << r.restored << ' ' << r.assignments.size();
  body << std::setprecision(17);
  for (const auto& [var, value] : r.assignments) {
    body << ' ' << var << ' ' << value;
  }
  if (!r.text.empty()) body << " text " << escape_text(r.text);
  const std::string b = body.str();
  std::ostringstream line;
  line << "J1 " << std::hex << std::setw(8) << std::setfill('0') << crc32(b)
       << ' ' << b << '\n';
  return line.str();
}

bool decode_record(std::string_view line, JournalRecord* out,
                   std::string* error) {
  *out = JournalRecord{};
  std::istringstream in{std::string(line)};
  std::string magic, crc_hex;
  if (!(in >> magic >> crc_hex) || magic != "J1" || crc_hex.size() != 8) {
    *error = "bad record framing";
    return false;
  }
  // The body is everything after "J1 <crc8> ".
  const std::size_t body_at = 3 + 8 + 1;
  if (line.size() < body_at) {
    *error = "bad record framing";
    return false;
  }
  const std::string_view body = line.substr(body_at);
  std::uint32_t want = 0;
  try {
    want = static_cast<std::uint32_t>(std::stoul(crc_hex, nullptr, 16));
  } catch (...) {
    *error = "bad record checksum field";
    return false;
  }
  if (crc32(body) != want) {
    *error = "record checksum mismatch";
    return false;
  }
  std::istringstream bs{std::string(body)};
  std::string outcome;
  std::size_t n_assign = 0;
  if (!(bs >> out->seq >> out->op >> out->session >> out->justification >>
        outcome >> out->applied >> out->restored >> n_assign)) {
    *error = "truncated record body";
    return false;
  }
  if (outcome != "ok" && outcome != "violation") {
    *error = "bad outcome '" + outcome + "'";
    return false;
  }
  out->violation = outcome == "violation";
  out->assignments.reserve(n_assign);
  for (std::size_t i = 0; i < n_assign; ++i) {
    std::string var;
    double value = 0.0;
    if (!(bs >> var >> value)) {
      *error = "truncated assignment list";
      return false;
    }
    out->assignments.emplace_back(std::move(var), value);
  }
  std::string kw;
  if (bs >> kw) {
    if (kw != "text") {
      *error = "unexpected trailing field '" + kw + "'";
      return false;
    }
    std::string rest;
    std::getline(bs, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    out->text = unescape_text(rest);
  }
  return true;
}

// ---------------------------------------------------------------------------
// CommitTicket

bool CommitTicket::wait() {
  if (state_ == nullptr) return false;
  std::unique_lock<std::mutex> lock(state_->mu);
  if (!state_->done) {
    const std::uint64_t t0 = core::Tracer::now_ns();
    state_->cv.wait(lock, [this] { return state_->done; });
    wait_ns_ = core::Tracer::now_ns() - t0;
  }
  return state_->ok;
}

// ---------------------------------------------------------------------------
// Journal

Journal::Journal(std::string path, int fd, Options opts)
    : path_(std::move(path)),
      fd_(fd),
      opts_(opts),
      io_(make_io_backend()),
      next_seq_(opts.next_seq) {}

std::unique_ptr<Journal> Journal::open(const std::string& path, Options opts,
                                       std::string* error) {
  int flags = O_CREAT | O_WRONLY | O_APPEND;
  if (opts.truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open journal '" + path + "': " + std::strerror(errno);
    }
    return nullptr;
  }
  if (opts.fsync_interval_records == 0) opts.fsync_interval_records = 1;
  if (opts.group_max_batch_records == 0) opts.group_max_batch_records = 1;
  auto j = std::unique_ptr<Journal>(new Journal(path, fd, opts));
  // Sealed segments: a truncating open deletes them (fresh log), a
  // re-attaching open continues their numbering.
  const std::vector<std::uint64_t> sealed = list_journal_segments(path);
  if (opts.truncate) {
    for (const std::uint64_t n : sealed) {
      ::unlink(journal_segment_path(path, n).c_str());
    }
  } else if (!sealed.empty()) {
    j->sealed_count_.store(sealed.back(), std::memory_order_relaxed);
  }
  struct stat st{};
  if (::fstat(fd, &st) == 0) {
    j->active_bytes_.store(static_cast<std::uint64_t>(st.st_size),
                           std::memory_order_relaxed);
  }
  // Crash-point knob, process-wide: "<n>" cuts the write path after n more
  // bytes; "flush:<n>" lets n flushes succeed and fails the next.
  if (const char* knob = std::getenv("STEMCP_JOURNAL_CRASH_AFTER")) {
    if (std::strncmp(knob, "flush:", 6) == 0) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(knob + 6, &end, 10);
      if (end != knob + 6) j->set_fail_fsync_after(n);
    } else {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(knob, &end, 10);
      if (end != knob) j->set_fail_after(n);
    }
  }
  if (opts.fsync == FsyncPolicy::kGroupCommit) {
    j->flusher_ = std::thread([raw = j.get()] { raw->flusher_loop(); });
  }
  return j;
}

Journal::~Journal() {
  if (flusher_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(gc_mu_);
      gc_stop_ = true;
    }
    gc_cv_.notify_all();
    flusher_.join();  // flushes (or fails) everything still queued
  }
  if (fd_ >= 0) {
    if (!dead() && opts_.fsync != FsyncPolicy::kNone) {
      // Final flush on the way out; a failure here still dead-latches so
      // the fault is never silently swallowed.
      if (!do_fsync(nullptr)) dead_.store(true, std::memory_order_release);
    }
    ::close(fd_);
  }
}

void Journal::set_fail_after(std::uint64_t bytes) {
  fail_after_.store(bytes, std::memory_order_relaxed);
}

void Journal::set_fail_fsync_after(std::uint64_t n) {
  fail_fsync_after_.store(n, std::memory_order_relaxed);
}

void Journal::set_fail_next_truncate() {
  fail_truncate_.store(true, std::memory_order_relaxed);
}

void Journal::set_metrics(core::MetricsRegistry* metrics) {
  const std::lock_guard<std::mutex> lock(gc_mu_);
  opts_.metrics = metrics;
}

const char* Journal::io_backend_name() const { return io_->name(); }

bool Journal::do_fsync(std::uint64_t* ns_out) {
  const std::uint64_t budget =
      fail_fsync_after_.load(std::memory_order_relaxed);
  if (budget != kNoLimit) {
    if (budget == 0) return false;  // injected device failure
    fail_fsync_after_.store(budget - 1, std::memory_order_relaxed);
  }
  // Always timed (two clock reads are noise next to an fsync): the
  // request-telemetry span reads the duration even when the session's own
  // metrics registry is disabled.
  const std::uint64_t t0 = core::Tracer::now_ns();
  if (!io_->flush(fd_)) return false;
  if (ns_out != nullptr) *ns_out = core::Tracer::now_ns() - t0;
  fsync_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Journal::maybe_roll_segment() {
  if (opts_.segment_bytes == 0) return true;
  if (active_bytes_.load(std::memory_order_relaxed) < opts_.segment_bytes) {
    return true;
  }
  const std::uint64_t n = sealed_count_.load(std::memory_order_relaxed) + 1;
  const std::string sealed = journal_segment_path(path_, n);
  if (::rename(path_.c_str(), sealed.c_str()) != 0) return false;
  if (!sync_parent_dir(path_)) return false;
  const int nfd = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (nfd < 0) return false;
  ::close(fd_);
  fd_ = nfd;
  sealed_count_.store(n, std::memory_order_relaxed);
  active_bytes_.store(0, std::memory_order_relaxed);
  return true;
}

bool Journal::write_cut(const char* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd_, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

// The classic synchronous append (every-record / interval / none).
bool Journal::append_sync(JournalRecord& record) {
  last_fsync_ns_ = 0;
  if (dead()) {
    append_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  record.seq = next_seq_.load(std::memory_order_relaxed);
  const std::string line = encode_record(record);
  std::size_t want = line.size();
  const std::uint64_t budget = fail_after_.load(std::memory_order_relaxed);
  if (budget != kNoLimit && budget < want) {
    // Injected crash: the device accepts only the head of this write, then
    // the journal goes dead — leaving exactly the torn tail a real crash
    // mid-write leaves.
    want = static_cast<std::size_t>(budget);
  }
  if (!write_cut(line.data(), want)) {
    dead_.store(true, std::memory_order_release);
    append_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  bytes_written_.fetch_add(want, std::memory_order_relaxed);
  active_bytes_.fetch_add(want, std::memory_order_relaxed);
  if (budget != kNoLimit) {
    fail_after_.store(budget - want, std::memory_order_relaxed);
    if (want < line.size()) {
      // Make the torn tail itself durable, like a crash would.  The sync
      // result cannot un-tear the record; a failure just dead-latches the
      // journal we are already latching.
      if (!do_fsync(nullptr)) dead_.store(true, std::memory_order_release);
      dead_.store(true, std::memory_order_release);
      append_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  next_seq_.fetch_add(1, std::memory_order_relaxed);
  records_written_.fetch_add(1, std::memory_order_relaxed);
  ++records_since_sync_;

  core::MetricsRegistry* m = opts_.metrics;
  const bool observe = m != nullptr && m->enabled();
  if (observe) {
    m->add_counter("journal.bytes", want);
    m->add_counter("journal.records");
  }
  const bool want_sync =
      opts_.fsync == FsyncPolicy::kEveryRecord ||
      (opts_.fsync == FsyncPolicy::kInterval &&
       records_since_sync_ >= opts_.fsync_interval_records);
  if (want_sync) {
    if (!do_fsync(&last_fsync_ns_)) {
      dead_.store(true, std::memory_order_release);
      append_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    records_since_sync_ = 0;
    if (observe) {
      m->histogram("journal.fsync_ns").record(last_fsync_ns_);
    }
  }
  if (!maybe_roll_segment()) {
    // The record IS durable; only the roll failed.  Latch so the next
    // append reports the fault instead of writing past a failed rename.
    dead_.store(true, std::memory_order_release);
  }
  return true;
}

void Journal::complete(const std::shared_ptr<CommitTicket::State>& st, bool ok,
                       bool fault_here, std::uint64_t fsync_ns) {
  {
    const std::lock_guard<std::mutex> lock(st->mu);
    st->done = true;
    st->ok = ok;
    st->fault_here = fault_here;
    st->fsync_ns = fsync_ns;
  }
  st->cv.notify_all();
}

CommitTicket Journal::append_async(JournalRecord& record) {
  CommitTicket t;
  if (opts_.fsync != FsyncPolicy::kGroupCommit) {
    t.state_ = std::make_shared<CommitTicket::State>();
    const bool ok = append_sync(record);
    t.seq_ = record.seq;
    t.state_->done = true;
    t.state_->ok = ok;
    t.state_->fsync_ns = last_fsync_ns_;
    return t;
  }
  auto state = std::make_shared<CommitTicket::State>();
  t.state_ = state;
  {
    const std::lock_guard<std::mutex> lock(gc_mu_);
    drain_pending_metrics_locked();
    if (dead_.load(std::memory_order_relaxed)) {
      append_failures_.fetch_add(1, std::memory_order_relaxed);
      state->done = true;  // already-failed ticket; fault was reported once
      return t;
    }
    record.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    t.seq_ = record.seq;
    gc_queue_.push_back(PendingRecord{encode_record(record), state});
  }
  gc_cv_.notify_all();
  return t;
}

bool Journal::append(JournalRecord& record) {
  if (opts_.fsync != FsyncPolicy::kGroupCommit) return append_sync(record);
  CommitTicket t = append_async(record);
  return t.wait();
}

void Journal::fail_queue_locked() {
  append_failures_.fetch_add(gc_queue_.size(), std::memory_order_relaxed);
  while (!gc_queue_.empty()) {
    complete(gc_queue_.front().state, /*ok=*/false, /*fault_here=*/false, 0);
    gc_queue_.pop_front();
  }
}

void Journal::drain_pending_metrics_locked() {
  const std::uint64_t bytes = pending_metric_bytes_;
  const std::uint64_t records = pending_metric_records_;
  pending_metric_bytes_ = 0;
  pending_metric_records_ = 0;
  core::MetricsRegistry* m = opts_.metrics;
  if (m == nullptr || !m->enabled()) {
    pending_fsync_samples_.clear();
    return;
  }
  if (bytes > 0) m->add_counter("journal.bytes", bytes);
  if (records > 0) m->add_counter("journal.records", records);
  for (const std::uint64_t ns : pending_fsync_samples_) {
    m->histogram("journal.fsync_ns").record(ns);
  }
  pending_fsync_samples_.clear();
}

bool Journal::flush_batch(std::vector<PendingRecord>& batch,
                          std::uint64_t* fsync_ns, std::uint64_t* bytes_out) {
  std::size_t total = 0;
  for (const PendingRecord& p : batch) total += p.line.size();
  std::size_t want = total;
  const std::uint64_t budget = fail_after_.load(std::memory_order_relaxed);
  const bool torn = budget != kNoLimit && budget < total;
  if (torn) want = static_cast<std::size_t>(budget);

  // One vectored write for the whole batch (clamped for an injected cut).
  std::vector<struct iovec> iov;
  iov.reserve(batch.size());
  std::size_t left = want;
  for (const PendingRecord& p : batch) {
    if (left == 0) break;
    const std::size_t n = std::min(left, p.line.size());
    iov.push_back({const_cast<char*>(p.line.data()), n});
    left -= n;
  }
  if (!iov.empty() &&
      !io_->write_all(fd_, iov.data(), static_cast<int>(iov.size()), want)) {
    return false;
  }
  bytes_written_.fetch_add(want, std::memory_order_relaxed);
  active_bytes_.fetch_add(want, std::memory_order_relaxed);
  if (budget != kNoLimit) {
    fail_after_.store(budget - want, std::memory_order_relaxed);
  }
  if (torn) {
    // Persist the torn tail like a crash would; failing is dead either way.
    do_fsync(nullptr);
    return false;
  }
  if (!do_fsync(fsync_ns)) return false;
  records_written_.fetch_add(batch.size(), std::memory_order_relaxed);
  *bytes_out = want;
  if (!maybe_roll_segment()) {
    // This batch IS durable; only the roll failed.  Latch after reporting
    // success so the tickets complete ok and the NEXT append fails.
    dead_.store(true, std::memory_order_release);
  }
  return true;
}

void Journal::flusher_loop() {
  std::unique_lock<std::mutex> lock(gc_mu_);
  for (;;) {
    gc_cv_.wait(lock, [this] { return gc_stop_ || !gc_queue_.empty(); });
    if (gc_queue_.empty()) {
      gc_flush_now_ = false;
      gc_drained_.notify_all();
      if (gc_stop_) return;
      continue;
    }
    if (dead_.load(std::memory_order_relaxed)) {
      fail_queue_locked();
      gc_drained_.notify_all();
      continue;
    }
    const std::size_t max_batch = opts_.group_max_batch_records;
    if (!gc_stop_ && !gc_flush_now_ && opts_.group_max_delay_us > 0 &&
        gc_queue_.size() < max_batch) {
      // Hold the batch open briefly for stragglers.  In steady state the
      // previous fsync is the real batching window and this wait is moot.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(opts_.group_max_delay_us);
      gc_cv_.wait_until(lock, deadline, [this, max_batch] {
        return gc_stop_ || gc_flush_now_ || gc_queue_.size() >= max_batch;
      });
    }
    std::vector<PendingRecord> batch;
    const std::size_t n = std::min(gc_queue_.size(), max_batch);
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(gc_queue_.front()));
      gc_queue_.pop_front();
    }
    gc_flushing_ = true;
    lock.unlock();

    std::uint64_t fsync_ns = 0;
    std::uint64_t bytes = 0;
    const bool ok = flush_batch(batch, &fsync_ns, &bytes);
    if (!ok) dead_.store(true, std::memory_order_release);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // Exactly-once fault report: the first ticket of the failed batch.
      complete(batch[i].state, ok, /*fault_here=*/!ok && i == 0, fsync_ns);
    }

    lock.lock();
    gc_flushing_ = false;
    if (ok) {
      pending_metric_bytes_ += bytes;
      pending_metric_records_ += batch.size();
      pending_fsync_samples_.push_back(fsync_ns);
    } else {
      append_failures_.fetch_add(batch.size(), std::memory_order_relaxed);
      fail_queue_locked();
    }
    if (gc_queue_.empty()) gc_flush_now_ = false;
    gc_drained_.notify_all();
  }
}

bool Journal::sync() {
  if (opts_.fsync == FsyncPolicy::kGroupCommit) {
    std::unique_lock<std::mutex> lock(gc_mu_);
    // Quiesce: every queued record must be flushed (each group flush
    // already fsyncs) before we can claim durability.
    gc_flush_now_ = true;
    gc_cv_.notify_all();
    gc_drained_.wait(lock, [this] {
      return (gc_queue_.empty() && !gc_flushing_) ||
             dead_.load(std::memory_order_relaxed);
    });
    drain_pending_metrics_locked();
    return !dead_.load(std::memory_order_relaxed);
  }
  if (dead()) return false;
  if (!do_fsync(nullptr)) {
    dead_.store(true, std::memory_order_release);
    return false;
  }
  records_since_sync_ = 0;
  return true;
}

bool Journal::truncate_all(std::uint64_t seq) {
  if (opts_.fsync == FsyncPolicy::kGroupCommit) {
    // Quiesce first: a queued record must never land after the cut (its
    // waiter gets durability from the flush that precedes the truncate,
    // and its state lives in the checkpoint that motivated the call).
    std::unique_lock<std::mutex> lock(gc_mu_);
    gc_flush_now_ = true;
    gc_cv_.notify_all();
    gc_drained_.wait(lock, [this] {
      return (gc_queue_.empty() && !gc_flushing_) ||
             dead_.load(std::memory_order_relaxed);
    });
    drain_pending_metrics_locked();
    if (dead_.load(std::memory_order_relaxed)) return false;
    // Flusher is idle and the queue is empty; we own the fd while holding
    // gc_mu_ (append_async also takes it, so no record can slip in).
    if (fail_truncate_.exchange(false, std::memory_order_relaxed) ||
        ::ftruncate(fd_, 0) != 0 || !do_fsync(nullptr)) {
      dead_.store(true, std::memory_order_release);
      return false;
    }
    for (const std::uint64_t n : list_journal_segments(path_)) {
      ::unlink(journal_segment_path(path_, n).c_str());
    }
    sealed_count_.store(0, std::memory_order_relaxed);
    active_bytes_.store(0, std::memory_order_relaxed);
    next_seq_.store(seq + 1, std::memory_order_relaxed);
    return true;
  }
  if (dead()) return false;
  if (fail_truncate_.exchange(false, std::memory_order_relaxed) ||
      ::ftruncate(fd_, 0) != 0 || !do_fsync(nullptr)) {
    dead_.store(true, std::memory_order_release);
    return false;
  }
  for (const std::uint64_t n : list_journal_segments(path_)) {
    ::unlink(journal_segment_path(path_, n).c_str());
  }
  sealed_count_.store(0, std::memory_order_relaxed);
  active_bytes_.store(0, std::memory_order_relaxed);
  next_seq_.store(seq + 1, std::memory_order_relaxed);
  records_since_sync_ = 0;
  return true;
}

// ---------------------------------------------------------------------------
// Scanning

JournalScan scan_journal(const std::string& path) {
  JournalScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return scan;  // absent file == empty journal
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (pos < contents.size()) {
    const std::size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      // Unterminated final line: the classic torn tail.
      scan.torn_tail = true;
      break;
    }
    const std::string_view line(contents.data() + pos, nl - pos);
    JournalRecord rec;
    std::string error;
    if (!decode_record(line, &rec, &error)) {
      // A bad record is only tolerable as the very last line — a torn write
      // that happened to end in '\n'.  Valid data after it means the middle
      // of the log is corrupt, which replay must refuse.
      if (contents.find('\n', nl + 1) != std::string::npos) {
        scan.error = "journal corrupt at byte " + std::to_string(pos) + ": " +
                     error;
        return scan;
      }
      scan.torn_tail = true;
      break;
    }
    scan.records.push_back(std::move(rec));
    pos = nl + 1;
    scan.valid_bytes = pos;
  }
  return scan;
}

std::string journal_segment_path(const std::string& path, std::uint64_t n) {
  return path + "." + std::to_string(n);
}

std::vector<std::uint64_t> list_journal_segments(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const std::string base =
      (slash == std::string::npos ? path : path.substr(slash + 1)) + ".";
  std::vector<std::uint64_t> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (const struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() <= base.size() || name.compare(0, base.size(), base) != 0) {
      continue;
    }
    const std::string suffix = name.substr(base.size());
    if (suffix.find_first_not_of("0123456789") != std::string::npos) continue;
    out.push_back(std::strtoull(suffix.c_str(), nullptr, 10));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

JournalScan scan_journal_segments(const std::string& path,
                                  unsigned parallelism) {
  const std::vector<std::uint64_t> segs = list_journal_segments(path);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (segs[i] != i + 1) {
      JournalScan bad;
      bad.error = "journal segment numbering gap: missing '" +
                  journal_segment_path(path, i + 1) + "'";
      return bad;
    }
  }
  // Scan sealed segments in parallel — they are immutable and independent;
  // order is restored at merge time.
  std::vector<JournalScan> sealed(segs.size());
  if (!segs.empty()) {
    unsigned lanes = parallelism == 0
                         ? static_cast<unsigned>(
                               std::min<std::size_t>(segs.size(), 8))
                         : parallelism;
    if (lanes == 0) lanes = 1;
    std::vector<std::thread> workers;
    std::atomic<std::size_t> next{0};
    workers.reserve(lanes);
    for (unsigned t = 0; t < lanes; ++t) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= sealed.size()) return;
          sealed[i] = scan_journal(journal_segment_path(path, segs[i]));
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  JournalScan merged;
  std::uint64_t prev_seq = 0;
  bool have_prev = false;
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    JournalScan& s = sealed[i];
    const std::string seg = journal_segment_path(path, segs[i]);
    if (!s.ok()) {
      merged.error = "sealed segment '" + seg + "': " + s.error;
      return merged;
    }
    if (s.torn_tail) {
      // Only the newest (active) file may tear — a sealed segment was
      // fsynced whole before its rename.
      merged.error = "sealed segment '" + seg + "' has a torn tail";
      return merged;
    }
    for (JournalRecord& r : s.records) {
      if (have_prev && r.seq <= prev_seq) {
        merged.error = "sealed segment '" + seg + "': seq " +
                       std::to_string(r.seq) + " does not continue " +
                       std::to_string(prev_seq);
        return merged;
      }
      prev_seq = r.seq;
      have_prev = true;
      merged.records.push_back(std::move(r));
    }
  }
  JournalScan active = scan_journal(path);
  if (!active.ok()) {
    merged.error = active.error;
    return merged;
  }
  for (JournalRecord& r : active.records) {
    if (have_prev && r.seq <= prev_seq) {
      merged.error = "active journal '" + path + "': seq " +
                     std::to_string(r.seq) + " does not continue " +
                     std::to_string(prev_seq);
      return merged;
    }
    prev_seq = r.seq;
    have_prev = true;
    merged.records.push_back(std::move(r));
  }
  merged.valid_bytes = active.valid_bytes;
  merged.torn_tail = active.torn_tail;
  return merged;
}

bool truncate_journal(const std::string& path, std::uint64_t valid_bytes) {
  return ::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) == 0;
}

}  // namespace stemcp::persist
