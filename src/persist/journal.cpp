#include "persist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/trace.h"

namespace stemcp::persist {

namespace {

/// Escape so any payload fits one space-delimited, single-line field run.
std::string escape_text(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_text(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out.push_back(s[i] == 'n' ? '\n' : s[i]);
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* to_string(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kEveryRecord: return "every-record";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kNone: return "none";
  }
  return "?";
}

bool fsync_policy_from(const std::string& s, FsyncPolicy* out) {
  if (s == "every-record") {
    *out = FsyncPolicy::kEveryRecord;
  } else if (s == "interval") {
    *out = FsyncPolicy::kInterval;
  } else if (s == "none") {
    *out = FsyncPolicy::kNone;
  } else {
    return false;
  }
  return true;
}

std::string encode_record(const JournalRecord& r) {
  std::ostringstream body;
  body << r.seq << ' ' << r.op << ' ' << r.session << ' ' << r.justification
       << ' ' << (r.violation ? "violation" : "ok") << ' ' << r.applied << ' '
       << r.restored << ' ' << r.assignments.size();
  body << std::setprecision(17);
  for (const auto& [var, value] : r.assignments) {
    body << ' ' << var << ' ' << value;
  }
  if (!r.text.empty()) body << " text " << escape_text(r.text);
  const std::string b = body.str();
  std::ostringstream line;
  line << "J1 " << std::hex << std::setw(8) << std::setfill('0') << crc32(b)
       << ' ' << b << '\n';
  return line.str();
}

bool decode_record(std::string_view line, JournalRecord* out,
                   std::string* error) {
  *out = JournalRecord{};
  std::istringstream in{std::string(line)};
  std::string magic, crc_hex;
  if (!(in >> magic >> crc_hex) || magic != "J1" || crc_hex.size() != 8) {
    *error = "bad record framing";
    return false;
  }
  // The body is everything after "J1 <crc8> ".
  const std::size_t body_at = 3 + 8 + 1;
  if (line.size() < body_at) {
    *error = "bad record framing";
    return false;
  }
  const std::string_view body = line.substr(body_at);
  std::uint32_t want = 0;
  try {
    want = static_cast<std::uint32_t>(std::stoul(crc_hex, nullptr, 16));
  } catch (...) {
    *error = "bad record checksum field";
    return false;
  }
  if (crc32(body) != want) {
    *error = "record checksum mismatch";
    return false;
  }
  std::istringstream bs{std::string(body)};
  std::string outcome;
  std::size_t n_assign = 0;
  if (!(bs >> out->seq >> out->op >> out->session >> out->justification >>
        outcome >> out->applied >> out->restored >> n_assign)) {
    *error = "truncated record body";
    return false;
  }
  if (outcome != "ok" && outcome != "violation") {
    *error = "bad outcome '" + outcome + "'";
    return false;
  }
  out->violation = outcome == "violation";
  out->assignments.reserve(n_assign);
  for (std::size_t i = 0; i < n_assign; ++i) {
    std::string var;
    double value = 0.0;
    if (!(bs >> var >> value)) {
      *error = "truncated assignment list";
      return false;
    }
    out->assignments.emplace_back(std::move(var), value);
  }
  std::string kw;
  if (bs >> kw) {
    if (kw != "text") {
      *error = "unexpected trailing field '" + kw + "'";
      return false;
    }
    std::string rest;
    std::getline(bs, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    out->text = unescape_text(rest);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Journal

Journal::Journal(std::string path, int fd, Options opts)
    : path_(std::move(path)),
      fd_(fd),
      opts_(opts),
      next_seq_(opts.next_seq),
      fail_after_(~0ull) {}

std::unique_ptr<Journal> Journal::open(const std::string& path, Options opts,
                                       std::string* error) {
  int flags = O_CREAT | O_WRONLY | O_APPEND;
  if (opts.truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open journal '" + path + "': " + std::strerror(errno);
    }
    return nullptr;
  }
  if (opts.fsync_interval_records == 0) opts.fsync_interval_records = 1;
  auto j = std::unique_ptr<Journal>(new Journal(path, fd, opts));
  // Crash-point knob: cut the write path after N more bytes, process-wide.
  if (const char* knob = std::getenv("STEMCP_JOURNAL_CRASH_AFTER")) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(knob, &end, 10);
    if (end != knob) j->set_fail_after(n);
  }
  return j;
}

Journal::~Journal() {
  if (fd_ >= 0) {
    if (!dead_ && opts_.fsync != FsyncPolicy::kNone) ::fsync(fd_);
    ::close(fd_);
  }
}

void Journal::set_fail_after(std::uint64_t bytes) { fail_after_ = bytes; }

bool Journal::append(JournalRecord& record) {
  last_fsync_ns_ = 0;
  if (dead_) {
    ++append_failures_;
    return false;
  }
  record.seq = next_seq_;
  const std::string line = encode_record(record);
  std::size_t want = line.size();
  if (fail_after_ != ~0ull && fail_after_ < want) {
    // Injected crash: the device accepts only the head of this write, then
    // the journal goes dead — leaving exactly the torn tail a real crash
    // mid-write leaves.
    want = static_cast<std::size_t>(fail_after_);
  }
  std::size_t done = 0;
  while (done < want) {
    const ssize_t n = ::write(fd_, line.data() + done, want - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      dead_ = true;
      ++append_failures_;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  bytes_written_ += done;
  if (fail_after_ != ~0ull) {
    fail_after_ -= done;
    if (done < line.size()) {
      ::fsync(fd_);  // make the torn tail itself durable, like a crash would
      dead_ = true;
      ++append_failures_;
      return false;
    }
  }
  ++next_seq_;
  ++records_written_;
  ++records_since_sync_;

  core::MetricsRegistry* m = opts_.metrics;
  const bool observe = m != nullptr && m->enabled();
  if (observe) {
    m->add_counter("journal.bytes", done);
    m->add_counter("journal.records");
  }
  const bool want_sync =
      opts_.fsync == FsyncPolicy::kEveryRecord ||
      (opts_.fsync == FsyncPolicy::kInterval &&
       records_since_sync_ >= opts_.fsync_interval_records);
  if (want_sync) {
    // Always timed (two clock reads are noise next to an fsync): the
    // request-telemetry span reads last_fsync_ns() even when the session's
    // own metrics registry is disabled.
    const std::uint64_t t0 = core::Tracer::now_ns();
    if (::fsync(fd_) != 0) {
      dead_ = true;
      ++append_failures_;
      return false;
    }
    last_fsync_ns_ = core::Tracer::now_ns() - t0;
    records_since_sync_ = 0;
    if (observe) {
      m->histogram("journal.fsync_ns").record(last_fsync_ns_);
    }
  }
  return true;
}

bool Journal::sync() {
  if (dead_) return false;
  if (::fsync(fd_) != 0) {
    dead_ = true;
    return false;
  }
  records_since_sync_ = 0;
  return true;
}

bool Journal::truncate_all(std::uint64_t seq) {
  if (dead_) return false;
  if (::ftruncate(fd_, 0) != 0 || ::fsync(fd_) != 0) {
    dead_ = true;
    return false;
  }
  next_seq_ = seq + 1;
  records_since_sync_ = 0;
  return true;
}

// ---------------------------------------------------------------------------
// Scanning

JournalScan scan_journal(const std::string& path) {
  JournalScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return scan;  // absent file == empty journal
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (pos < contents.size()) {
    const std::size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      // Unterminated final line: the classic torn tail.
      scan.torn_tail = true;
      break;
    }
    const std::string_view line(contents.data() + pos, nl - pos);
    JournalRecord rec;
    std::string error;
    if (!decode_record(line, &rec, &error)) {
      // A bad record is only tolerable as the very last line — a torn write
      // that happened to end in '\n'.  Valid data after it means the middle
      // of the log is corrupt, which replay must refuse.
      if (contents.find('\n', nl + 1) != std::string::npos) {
        scan.error = "journal corrupt at byte " + std::to_string(pos) + ": " +
                     error;
        return scan;
      }
      scan.torn_tail = true;
      break;
    }
    scan.records.push_back(std::move(rec));
    pos = nl + 1;
    scan.valid_bytes = pos;
  }
  return scan;
}

bool truncate_journal(const std::string& path, std::uint64_t valid_bytes) {
  return ::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) == 0;
}

}  // namespace stemcp::persist
