// Durability layer, part 3: loading what recovery needs.
//
// Recovery itself — replaying records through the real engine — lives in the
// service layer (persist cannot depend on service).  This module does the
// durable-state half: locate checkpoint + journal for a base path, verify
// them, drop the torn tail, and hand back the exact record sequence replay
// must apply.  See docs/PERSISTENCE.md for the full protocol.
#pragma once

#include <string>

#include "persist/checkpoint.h"
#include "persist/journal.h"

namespace stemcp::persist {

/// Everything on disk for one durable session, validated and tail-trimmed.
struct RecoveredLog {
  bool has_checkpoint = false;
  CheckpointMeta meta;          ///< valid when has_checkpoint
  std::string checkpoint_text;  ///< library text (header line excluded)

  /// Merged scan of every sealed segment plus the active journal file
  /// (valid_bytes / torn_tail describe the active file only).
  JournalScan scan;
  /// Records replay must apply: scan.records filtered to seq > meta.seq
  /// (a crash between checkpoint-rename and journal-truncate leaves stale
  /// low-seq records behind; the filter makes that window harmless).
  std::vector<JournalRecord> replay;

  bool ok = false;
  std::string error;
};

/// Load "<base>.ckpt" + "<base>.journal" (and any sealed
/// "<base>.journal.<n>" segments).  Missing checkpoint means cold start
/// from an empty library (fine); a corrupt checkpoint header, mid-journal
/// corruption, or a torn/corrupt SEALED segment sets ok=false.  A torn
/// final record of the active file is tolerated and reported via
/// scan.torn_tail; the caller should
/// truncate_journal(journal_path(base), scan.valid_bytes) before appending.
RecoveredLog load_recovered_log(const std::string& base);

}  // namespace stemcp::persist
