// Durability layer, part 1: the operation journal (ROADMAP: production
// scale; cf. the append-only / explicit-sync-policy / torn-tail-handling
// idioms of log-structured I/O engines).
//
// The paper's propagation semantics make every mutating service request
// deterministic and replayable — justification records say *why* a value
// holds, the one-value-change rule makes a wave's effect a pure function of
// its inputs, and restore-on-violation means a violating request leaves no
// residue.  A journal of the requests is therefore a complete redo log: to
// rebuild a session, replay the requests through the real engine and every
// derived value, violation and restore re-derives identically.
//
// File format: one record per line,
//
//   J1 <crc32-hex8> <body>
//   body := <seq> <op> <session> <justification>
//           <ok|violation> <applied> <restored>
//           <n-assignments> [<var> <value>]... [text <escaped-rest-of-line>]
//
// The CRC covers exactly <body>.  `text` payloads (library text, edit
// commands, open options) escape backslash and newline ("\\", "\n") so a
// record is always a single line.  A record is valid iff it is newline-
// terminated and its CRC matches; scanning tolerates a torn FINAL record
// (the write was cut mid-line — the crash case) but treats a bad CRC with
// valid records after it as corruption.
//
// Sync policy: kEveryRecord fsyncs after each append (durability boundary =
// append returning true), kInterval fsyncs every N records, kNone leaves
// syncing to the OS.  kGroupCommit hands records to a dedicated flusher
// thread that coalesces everything queued — across sessions — into one
// vectored write + one fsync, then completes every covered CommitTicket:
// N concurrent mutating requests pay one device flush instead of N.  The
// durability boundary moves with it: a group-commit record is durable when
// its ticket completes, NOT when append_async returns.
//
// Segmentation: with Options::segment_bytes > 0 the journal rolls the
// active file `<base>.journal` into sealed segments `<base>.journal.<n>`
// (n = 1, 2, ... contiguous) once the active file crosses the threshold
// after a flush.  Sealed segments are immutable; the torn-final-record
// tolerance applies only to the active file — a torn or corrupt sealed
// segment is fatal.  Checkpoint truncation deletes every sealed segment
// and empties the active file.
//
// Fault injection for crash tests: set_fail_after(n) makes the journal
// write at most n more bytes — a partial final write — then go dead;
// set_fail_fsync_after(n) lets n more fsyncs succeed and fails the next
// (covering the append, group-flush, sync, truncate and destructor sync
// sites); set_fail_next_truncate() fails the next ftruncate.  The
// STEMCP_JOURNAL_CRASH_AFTER environment knob applies the same limits to
// every journal opened afterwards: a decimal byte count cuts the write
// path, "flush:<n>" kills the journal on its (n+1)th flush — so a shell
// script can demo group-commit crash recovery without recompiling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace stemcp::core {
class MetricsRegistry;
}

namespace stemcp::persist {

class IoBackend;

enum class FsyncPolicy : std::uint8_t {
  kEveryRecord,  ///< fsync after every append (full durability)
  kInterval,     ///< fsync every Options::fsync_interval_records appends
  kNone,         ///< never fsync explicitly (OS page cache decides)
  kGroupCommit,  ///< batch queued records into one writev+fsync per flush
};

const char* to_string(FsyncPolicy p);
/// Parse "every-record" / "interval" / "none" / "group-commit"; false on
/// unknown text.
bool fsync_policy_from(const std::string& s, FsyncPolicy* out);

/// One journaled operation: what the service executed and how it came out.
/// `op` mirrors the mutating request verbs (open / load / assign /
/// batch-assign / edit / close); `justification` tags whose authority the
/// assignments carried (always "#USER" today — the field exists so replay
/// diagnostics and future application-sourced records stay self-describing).
struct JournalRecord {
  std::uint64_t seq = 0;
  std::string op;
  std::string session;
  std::string justification = "#USER";
  std::string text;  ///< op payload: library text, edit command, open options
  std::vector<std::pair<std::string, double>> assignments;

  // Outcome, for replay verification (a replayed record must re-derive the
  // same violation/restore behaviour).
  bool violation = false;
  std::uint64_t applied = 0;
  std::uint64_t restored = 0;

  bool operator==(const JournalRecord&) const = default;
};

/// CRC-32 (IEEE, reflected) over `data` — the per-record checksum.
std::uint32_t crc32(std::string_view data);

/// Serialize one record as its single journal line (newline included).
std::string encode_record(const JournalRecord& r);
/// Parse one journal line (without the trailing newline).  Returns false
/// with `error` set on framing or checksum mismatch.
bool decode_record(std::string_view line, JournalRecord* out,
                   std::string* error);

/// Handle on one queued (or already-finished) append.  Seq-stamped at
/// enqueue time; wait() blocks until the flusher has made the record
/// durable (or the journal died) and returns the durability verdict.
/// For the synchronous policies append_async completes the ticket inline,
/// so wait() never blocks and the old durability boundary is unchanged.
class CommitTicket {
 public:
  CommitTicket() = default;  ///< invalid ticket: wait() fails immediately

  bool valid() const { return state_ != nullptr; }
  std::uint64_t seq() const { return seq_; }

  /// Block until the covering flush completes; true iff the record is
  /// durable.  Idempotent.
  bool wait();

  // The following report on the completed flush — call only after wait().
  /// Nanoseconds the covering batch spent inside fsync (shared by every
  /// ticket of the batch).
  std::uint64_t fsync_ns() const { return state_ ? state_->fsync_ns : 0; }
  /// Nanoseconds THIS wait() call actually blocked (0 when the flush had
  /// already completed — and always 0 for synchronous policies).
  std::uint64_t wait_ns() const { return wait_ns_; }
  /// True on exactly one ticket per journal death: the first ticket of the
  /// batch whose flush failed.  The service layer uses it to report the
  /// dead-journal degradation exactly once.
  bool faulted() const { return state_ != nullptr && state_->fault_here; }

 private:
  friend class Journal;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    bool fault_here = false;
    std::uint64_t fsync_ns = 0;
  };
  std::shared_ptr<State> state_;
  std::uint64_t seq_ = 0;
  std::uint64_t wait_ns_ = 0;
};

/// Append-only journal writer over one file descriptor (plus its sealed
/// segment files when segmentation is on).
class Journal {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
    std::uint32_t fsync_interval_records = 32;  ///< kInterval cadence
    /// kGroupCommit knobs: a flush takes at most this many records, and the
    /// flusher waits at most this long for stragglers once a record is
    /// queued (the fsync itself is usually the effective batching window).
    std::uint32_t group_max_batch_records = 64;
    std::uint32_t group_max_delay_us = 200;
    /// Roll the active file into a sealed `<path>.<n>` segment once it
    /// crosses this many bytes (0 = never roll; single-file journal).
    std::uint64_t segment_bytes = 0;
    bool truncate = false;  ///< start a fresh log (attach/checkpoint path)
    std::uint64_t next_seq = 1;
    /// When set and enabled, appends record journal.bytes / journal.records
    /// counters and the journal.fsync_ns histogram here.
    core::MetricsRegistry* metrics = nullptr;
  };

  /// Open (creating if needed) `path` for appending; discovers existing
  /// sealed segments and continues their numbering (truncate deletes them).
  /// Returns nullptr with `error` set when the file cannot be opened.
  /// Honors the STEMCP_JOURNAL_CRASH_AFTER environment knob (decimal byte
  /// count, or "flush:<n>" to fail the (n+1)th flush).
  static std::unique_ptr<Journal> open(const std::string& path, Options opts,
                                       std::string* error);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Encode, write and (per policy) fsync one record; assigns it the next
  /// sequence number.  Blocks for durability under every policy (for
  /// kGroupCommit it enqueues and waits on the ticket).  Returns false
  /// once the journal is dead (fault injection or a write error) — the
  /// in-memory session keeps working, the log just stops growing, exactly
  /// like a crashed disk.
  bool append(JournalRecord& record);

  /// Two-phase append: stamp the record's seq, hand the encoded line to the
  /// flusher queue, and return a ticket that completes when the covering
  /// group flush does.  For the synchronous policies this performs the
  /// whole classic append inline and returns an already-completed ticket.
  /// A dead journal returns an already-failed ticket.
  CommitTicket append_async(JournalRecord& record);

  /// Flush everything appended so far to stable storage: quiesces the
  /// group-commit queue, then fsyncs.  Returns false on failure or when
  /// the journal is dead.
  bool sync();

  /// Truncate the log to empty — deleting every sealed segment — and
  /// restart sequence numbering after `seq` (the checkpoint path: state up
  /// to `seq` now lives in the checkpoint).  Quiesces the group-commit
  /// queue first, so no queued record can land after the cut.
  bool truncate_all(std::uint64_t seq);

  /// Fault injection: write at most `bytes` more bytes — the final write is
  /// cut short mid-record — then refuse all further writes.
  void set_fail_after(std::uint64_t bytes);
  /// Fault injection: let `n` more fsyncs succeed, then fail the next one
  /// (whichever site issues it: append, group flush, sync, truncate_all,
  /// destructor).
  void set_fail_fsync_after(std::uint64_t n);
  /// Fault injection: fail the next ftruncate (truncate_all site).
  void set_fail_next_truncate();

  /// Re-point the metrics sink.  The owner must call this whenever the
  /// registry it handed to open() is replaced (a fresh-target library load
  /// swaps the whole PropagationContext, registry included).  Only the
  /// caller's thread ever touches the registry — the flusher parks its
  /// counts and the next append/sync on this thread drains them.
  void set_metrics(core::MetricsRegistry* metrics);

  bool dead() const { return dead_.load(std::memory_order_acquire); }
  const std::string& path() const { return path_; }
  FsyncPolicy policy() const { return opts_.fsync; }
  /// Name of the I/O backend in use ("pwrite" / "io_uring").
  const char* io_backend_name() const;
  /// Nanoseconds the most recent append() spent inside fsync (0 when that
  /// append did not sync, per policy).  The request-telemetry layer reads
  /// this to split a request's journal phase into append vs. flush time;
  /// group-commit requests read their ticket's fsync_ns() instead.
  std::uint64_t last_fsync_ns() const { return last_fsync_ns_; }
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t records_written() const {
    return records_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t next_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  std::uint64_t append_failures() const {
    return append_failures_.load(std::memory_order_relaxed);
  }
  /// Total fsyncs issued (all sites).  records_written() / fsyncs() is the
  /// group-commit batching factor.
  std::uint64_t fsyncs() const {
    return fsync_count_.load(std::memory_order_relaxed);
  }
  /// Number of sealed `<path>.<n>` segments currently on disk.
  std::uint64_t sealed_segments() const {
    return sealed_count_.load(std::memory_order_relaxed);
  }

 private:
  struct PendingRecord {
    std::string line;
    std::shared_ptr<CommitTicket::State> state;
  };

  Journal(std::string path, int fd, Options opts);

  bool append_sync(JournalRecord& record);
  void flusher_loop();
  bool flush_batch(std::vector<PendingRecord>& batch, std::uint64_t* fsync_ns,
                   std::uint64_t* bytes_out);
  bool write_cut(const char* data, std::size_t len);  ///< torn-write helper
  bool do_fsync(std::uint64_t* ns_out);
  bool maybe_roll_segment();
  void fail_queue_locked();
  void drain_pending_metrics_locked();
  void complete(const std::shared_ptr<CommitTicket::State>& st, bool ok,
                bool fault_here, std::uint64_t fsync_ns);

  std::string path_;
  int fd_ = -1;  ///< active segment; swapped only on the write thread
  Options opts_;
  std::unique_ptr<IoBackend> io_;

  std::atomic<bool> dead_{false};
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> records_written_{0};
  std::atomic<std::uint64_t> append_failures_{0};
  std::atomic<std::uint64_t> fsync_count_{0};
  std::atomic<std::uint64_t> active_bytes_{0};
  std::atomic<std::uint64_t> sealed_count_{0};
  std::uint64_t records_since_sync_ = 0;  ///< caller thread only (kInterval)
  std::uint64_t last_fsync_ns_ = 0;       ///< caller thread only

  // Fault injection (atomics: armed by test threads, read on the write
  // thread — which is the flusher under kGroupCommit).
  std::atomic<std::uint64_t> fail_after_{~0ull};        ///< byte budget
  std::atomic<std::uint64_t> fail_fsync_after_{~0ull};  ///< fsync budget
  std::atomic<bool> fail_truncate_{false};

  // Group-commit state (guarded by gc_mu_ unless noted).
  std::mutex gc_mu_;
  std::condition_variable gc_cv_;       ///< flusher wakeups
  std::condition_variable gc_drained_;  ///< sync()/truncate_all() quiesce
  std::deque<PendingRecord> gc_queue_;
  bool gc_stop_ = false;
  bool gc_flush_now_ = false;  ///< cut the delay window (sync/quiesce)
  bool gc_flushing_ = false;   ///< a batch is out being written
  // Metrics the flusher cannot report itself (the registry may be swapped
  // under the session lock); parked here and drained by the next
  // append/sync on the caller thread.
  std::uint64_t pending_metric_bytes_ = 0;
  std::uint64_t pending_metric_records_ = 0;
  std::vector<std::uint64_t> pending_fsync_samples_;
  std::thread flusher_;  ///< started by open() under kGroupCommit
};

/// Result of scanning a journal file (or a whole segmented journal) front
/// to back.
struct JournalScan {
  std::vector<JournalRecord> records;
  std::uint64_t valid_bytes = 0;  ///< end offset of the last valid record
                                  ///< IN THE ACTIVE FILE (segment scans)
  bool torn_tail = false;  ///< trailing partial/corrupt record was dropped
  std::string error;  ///< non-empty: corruption BEFORE the tail (fatal)

  bool ok() const { return error.empty(); }
};

/// Read every valid record of `path` (a missing file scans as empty).
/// Tolerates a torn final record; a checksum mismatch with valid records
/// after it is reported through `error`.
JournalScan scan_journal(const std::string& path);

/// Sealed-segment path: `<path>.<n>` (n >= 1).
std::string journal_segment_path(const std::string& path, std::uint64_t n);

/// Sealed segment numbers present on disk for `path`, sorted ascending
/// (found by directory listing, so gaps from manual tampering are visible).
std::vector<std::uint64_t> list_journal_segments(const std::string& path);

/// Scan a segmented journal: every sealed `<path>.<n>` in order, then the
/// active file.  Sealed segments are scanned in parallel (`parallelism`
/// threads; 0 = one per segment, capped).  Sealed segments must be whole —
/// a torn or corrupt sealed segment, a numbering gap, or a seq that does
/// not continue the previous segment's is fatal.  torn_tail/valid_bytes
/// describe the ACTIVE file only, so recovery can cut its torn tail.
JournalScan scan_journal_segments(const std::string& path,
                                  unsigned parallelism = 0);

/// Cut the file back to `valid_bytes` — recovery calls this before
/// re-attaching so new records never follow torn bytes.
bool truncate_journal(const std::string& path, std::uint64_t valid_bytes);

}  // namespace stemcp::persist
