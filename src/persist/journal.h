// Durability layer, part 1: the operation journal (ROADMAP: production
// scale; cf. the append-only / explicit-sync-policy / torn-tail-handling
// idioms of log-structured I/O engines).
//
// The paper's propagation semantics make every mutating service request
// deterministic and replayable — justification records say *why* a value
// holds, the one-value-change rule makes a wave's effect a pure function of
// its inputs, and restore-on-violation means a violating request leaves no
// residue.  A journal of the requests is therefore a complete redo log: to
// rebuild a session, replay the requests through the real engine and every
// derived value, violation and restore re-derives identically.
//
// File format: one record per line,
//
//   J1 <crc32-hex8> <body>
//   body := <seq> <op> <session> <justification>
//           <ok|violation> <applied> <restored>
//           <n-assignments> [<var> <value>]... [text <escaped-rest-of-line>]
//
// The CRC covers exactly <body>.  `text` payloads (library text, edit
// commands, open options) escape backslash and newline ("\\", "\n") so a
// record is always a single line.  A record is valid iff it is newline-
// terminated and its CRC matches; scanning tolerates a torn FINAL record
// (the write was cut mid-line — the crash case) but treats a bad CRC with
// valid records after it as corruption.
//
// Sync policy: kEveryRecord fsyncs after each append (durability boundary =
// append returning true), kInterval fsyncs every N records, kNone leaves
// syncing to the OS.  Fault injection for crash tests: set_fail_after(n)
// makes the journal write at most n more bytes — a partial final write —
// then go dead; the STEMCP_JOURNAL_CRASH_AFTER environment knob applies the
// same limit to every journal opened afterwards, so a test (or an operator
// reproducing a field crash) can cut the write path at an arbitrary byte
// without recompiling.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stemcp::core {
class MetricsRegistry;
}

namespace stemcp::persist {

enum class FsyncPolicy : std::uint8_t {
  kEveryRecord,  ///< fsync after every append (full durability)
  kInterval,     ///< fsync every Options::fsync_interval_records appends
  kNone,         ///< never fsync explicitly (OS page cache decides)
};

const char* to_string(FsyncPolicy p);
/// Parse "every-record" / "interval" / "none"; false on unknown text.
bool fsync_policy_from(const std::string& s, FsyncPolicy* out);

/// One journaled operation: what the service executed and how it came out.
/// `op` mirrors the mutating request verbs (open / load / assign /
/// batch-assign / edit / close); `justification` tags whose authority the
/// assignments carried (always "#USER" today — the field exists so replay
/// diagnostics and future application-sourced records stay self-describing).
struct JournalRecord {
  std::uint64_t seq = 0;
  std::string op;
  std::string session;
  std::string justification = "#USER";
  std::string text;  ///< op payload: library text, edit command, open options
  std::vector<std::pair<std::string, double>> assignments;

  // Outcome, for replay verification (a replayed record must re-derive the
  // same violation/restore behaviour).
  bool violation = false;
  std::uint64_t applied = 0;
  std::uint64_t restored = 0;

  bool operator==(const JournalRecord&) const = default;
};

/// CRC-32 (IEEE, reflected) over `data` — the per-record checksum.
std::uint32_t crc32(std::string_view data);

/// Serialize one record as its single journal line (newline included).
std::string encode_record(const JournalRecord& r);
/// Parse one journal line (without the trailing newline).  Returns false
/// with `error` set on framing or checksum mismatch.
bool decode_record(std::string_view line, JournalRecord* out,
                   std::string* error);

/// Append-only journal writer over one file descriptor.
class Journal {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
    std::uint32_t fsync_interval_records = 32;  ///< kInterval cadence
    bool truncate = false;  ///< start a fresh log (attach/checkpoint path)
    std::uint64_t next_seq = 1;
    /// When set and enabled, appends record journal.bytes / journal.records
    /// counters and the journal.fsync_ns histogram here.
    core::MetricsRegistry* metrics = nullptr;
  };

  /// Open (creating if needed) `path` for appending.  Returns nullptr with
  /// `error` set when the file cannot be opened.  Honors the
  /// STEMCP_JOURNAL_CRASH_AFTER environment knob (decimal byte count).
  static std::unique_ptr<Journal> open(const std::string& path, Options opts,
                                       std::string* error);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Encode, write and (per policy) fsync one record; assigns it the next
  /// sequence number (returned via record.seq... see below).  Returns false
  /// once the journal is dead (fault injection or a write error) — the
  /// in-memory session keeps working, the log just stops growing, exactly
  /// like a crashed disk.
  bool append(JournalRecord& record);

  /// Explicit fsync (no-op when dead).  Returns false on fsync failure.
  bool sync();

  /// Truncate the log to empty and restart sequence numbering after `seq`
  /// (the checkpoint path: state up to `seq` now lives in the checkpoint).
  bool truncate_all(std::uint64_t seq);

  /// Fault injection: write at most `bytes` more bytes — the final write is
  /// cut short mid-record — then refuse all further writes.
  void set_fail_after(std::uint64_t bytes);

  /// Re-point the metrics sink.  The owner must call this whenever the
  /// registry it handed to open() is replaced (a fresh-target library load
  /// swaps the whole PropagationContext, registry included).
  void set_metrics(core::MetricsRegistry* metrics) { opts_.metrics = metrics; }

  bool dead() const { return dead_; }
  const std::string& path() const { return path_; }
  FsyncPolicy policy() const { return opts_.fsync; }
  /// Nanoseconds the most recent append() spent inside fsync (0 when that
  /// append did not sync, per policy).  The request-telemetry layer reads
  /// this to split a request's journal phase into append vs. flush time.
  std::uint64_t last_fsync_ns() const { return last_fsync_ns_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t records_written() const { return records_written_; }
  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t append_failures() const { return append_failures_; }

 private:
  Journal(std::string path, int fd, Options opts);

  std::string path_;
  int fd_ = -1;
  Options opts_;
  bool dead_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t records_written_ = 0;
  std::uint64_t records_since_sync_ = 0;
  std::uint64_t append_failures_ = 0;
  std::uint64_t last_fsync_ns_ = 0;
  std::uint64_t fail_after_ = 0;  ///< remaining byte budget; ~0 = unlimited
};

/// Result of scanning a journal file front to back.
struct JournalScan {
  std::vector<JournalRecord> records;
  std::uint64_t valid_bytes = 0;  ///< end offset of the last valid record
  bool torn_tail = false;  ///< trailing partial/corrupt record was dropped
  std::string error;  ///< non-empty: corruption BEFORE the tail (fatal)

  bool ok() const { return error.empty(); }
};

/// Read every valid record of `path` (a missing file scans as empty).
/// Tolerates a torn final record; a checksum mismatch with valid records
/// after it is reported through `error`.
JournalScan scan_journal(const std::string& path);

/// Cut the file back to `valid_bytes` — recovery calls this before
/// re-attaching so new records never follow torn bytes.
bool truncate_journal(const std::string& path, std::uint64_t valid_bytes);

}  // namespace stemcp::persist
