#include "persist/io_backend.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#ifdef STEMCP_HAS_IO_URING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>

#include <atomic>
#include <cstdint>
#endif

namespace stemcp::persist {

namespace {

/// Advance an iovec array past `done` bytes (short-write continuation).
void advance_iov(std::vector<struct iovec>* iov, std::size_t done) {
  std::size_t skip = done;
  auto it = iov->begin();
  while (it != iov->end() && skip >= it->iov_len) {
    skip -= it->iov_len;
    ++it;
  }
  iov->erase(iov->begin(), it);
  if (!iov->empty() && skip > 0) {
    iov->front().iov_base = static_cast<char*>(iov->front().iov_base) + skip;
    iov->front().iov_len -= skip;
  }
}

class PwriteBackend final : public IoBackend {
 public:
  const char* name() const override { return "pwrite"; }

  bool write_all(int fd, const struct iovec* iov, int iovcnt,
                 std::size_t bytes) override {
    std::vector<struct iovec> rest(iov, iov + iovcnt);
    std::size_t done = 0;
    while (done < bytes) {
      const ssize_t n = ::writev(fd, rest.data(), static_cast<int>(rest.size()));
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      done += static_cast<std::size_t>(n);
      advance_iov(&rest, static_cast<std::size_t>(n));
    }
    return true;
  }

  bool flush(int fd) override { return ::fsync(fd) == 0; }
};

#ifdef STEMCP_HAS_IO_URING

/// Minimal single-issue io_uring: one sqe in flight, submit + wait per op.
/// Raw syscalls only — the build image has the uapi header but no liburing.
class IoUringBackend final : public IoBackend {
 public:
  static std::unique_ptr<IoBackend> try_create() {
    auto b = std::unique_ptr<IoUringBackend>(new IoUringBackend());
    if (!b->init()) return nullptr;
    return b;
  }

  ~IoUringBackend() override {
    if (sqe_mm_ != nullptr) ::munmap(sqe_mm_, sqe_len_);
    if (cq_mm_ != nullptr && cq_mm_ != sq_mm_) ::munmap(cq_mm_, cq_len_);
    if (sq_mm_ != nullptr) ::munmap(sq_mm_, sq_len_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  const char* name() const override { return "io_uring"; }

  bool write_all(int fd, const struct iovec* iov, int iovcnt,
                 std::size_t bytes) override {
    std::vector<struct iovec> rest(iov, iov + iovcnt);
    std::size_t done = 0;
    while (done < bytes) {
      struct io_uring_sqe sqe;
      std::memset(&sqe, 0, sizeof(sqe));
      sqe.opcode = IORING_OP_WRITEV;
      sqe.fd = fd;
      sqe.addr = reinterpret_cast<std::uint64_t>(rest.data());
      sqe.len = static_cast<std::uint32_t>(rest.size());
      sqe.off = static_cast<std::uint64_t>(-1);  // append position (O_APPEND)
      const int n = submit_and_wait(sqe);
      if (n < 0) {
        if (n == -EINTR) continue;
        return false;
      }
      done += static_cast<std::size_t>(n);
      advance_iov(&rest, static_cast<std::size_t>(n));
    }
    return true;
  }

  bool flush(int fd) override {
    struct io_uring_sqe sqe;
    std::memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = IORING_OP_FSYNC;
    sqe.fd = fd;
    int n = submit_and_wait(sqe);
    while (n == -EINTR) n = submit_and_wait(sqe);
    return n >= 0;
  }

 private:
  IoUringBackend() = default;

  bool init() {
    struct io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd_ = static_cast<int>(::syscall(__NR_io_uring_setup, 4u, &p));
    if (ring_fd_ < 0) return false;
    sq_len_ = p.sq_off.array + p.sq_entries * sizeof(std::uint32_t);
    cq_len_ = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
    const bool single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single && cq_len_ > sq_len_) sq_len_ = cq_len_;
    sq_mm_ = ::mmap(nullptr, sq_len_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_mm_ == MAP_FAILED) {
      sq_mm_ = nullptr;
      return false;
    }
    if (single) {
      cq_mm_ = sq_mm_;
      cq_len_ = sq_len_;
    } else {
      cq_mm_ = ::mmap(nullptr, cq_len_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_mm_ == MAP_FAILED) {
        cq_mm_ = nullptr;
        return false;
      }
    }
    sqe_len_ = p.sq_entries * sizeof(struct io_uring_sqe);
    sqe_mm_ = ::mmap(nullptr, sqe_len_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqe_mm_ == MAP_FAILED) {
      sqe_mm_ = nullptr;
      return false;
    }
    auto* sq = static_cast<char*>(sq_mm_);
    sq_head_ = reinterpret_cast<std::uint32_t*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<std::uint32_t*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<std::uint32_t*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<std::uint32_t*>(sq + p.sq_off.array);
    auto* cq = static_cast<char*>(cq_mm_);
    cq_head_ = reinterpret_cast<std::uint32_t*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<std::uint32_t*>(cq + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<std::uint32_t*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq + p.cq_off.cqes);
    sqes_ = static_cast<struct io_uring_sqe*>(sqe_mm_);
    return true;
  }

  /// Push one sqe, io_uring_enter until its cqe arrives, return cqe.res.
  int submit_and_wait(const struct io_uring_sqe& sqe) {
    const std::uint32_t tail =
        __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);
    const std::uint32_t idx = tail & sq_mask_;
    sqes_[idx] = sqe;
    sq_array_[idx] = idx;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    const long rc = ::syscall(__NR_io_uring_enter, ring_fd_, 1u, 1u,
                              IORING_ENTER_GETEVENTS, nullptr, 0);
    if (rc < 0) return -errno;
    const std::uint32_t head = __atomic_load_n(cq_head_, __ATOMIC_ACQUIRE);
    if (head == __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE)) return -EIO;
    const int res = cqes_[head & cq_mask_].res;
    __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
    return res;
  }

  int ring_fd_ = -1;
  void* sq_mm_ = nullptr;
  void* cq_mm_ = nullptr;
  void* sqe_mm_ = nullptr;
  std::size_t sq_len_ = 0;
  std::size_t cq_len_ = 0;
  std::size_t sqe_len_ = 0;
  std::uint32_t* sq_head_ = nullptr;
  std::uint32_t* sq_tail_ = nullptr;
  std::uint32_t sq_mask_ = 0;
  std::uint32_t* sq_array_ = nullptr;
  std::uint32_t* cq_head_ = nullptr;
  std::uint32_t* cq_tail_ = nullptr;
  std::uint32_t cq_mask_ = 0;
  struct io_uring_cqe* cqes_ = nullptr;
  struct io_uring_sqe* sqes_ = nullptr;
};

#endif  // STEMCP_HAS_IO_URING

}  // namespace

std::unique_ptr<IoBackend> make_pwrite_backend() {
  return std::make_unique<PwriteBackend>();
}

std::unique_ptr<IoBackend> make_io_backend() {
#ifdef STEMCP_HAS_IO_URING
  if (auto b = IoUringBackend::try_create()) return b;
#endif
  return make_pwrite_backend();
}

bool io_uring_available() {
#ifdef STEMCP_HAS_IO_URING
  return IoUringBackend::try_create() != nullptr;
#else
  return false;
#endif
}

}  // namespace stemcp::persist
