// Durability layer, part 2: atomic files and checkpoints.
//
// A checkpoint is an ordinary library file (LibraryWriter output) preceded
// by one comment line:
//
//   # stemcp-checkpoint seq <N> session <name> options [<opt>...]
//
// Because '#' lines are comments to LibraryReader, a checkpoint file is
// directly loadable as a library AND self-describing to recovery: <N> is
// the sequence number of the last journal record whose effect the snapshot
// contains (replay skips records with seq <= N — which also makes a crash
// BETWEEN checkpoint-rename and journal-truncate harmless), <name> the
// session it snapshots, and the options the flags the session was opened
// with ("metrics" / "trace").
//
// Every file written here goes through atomic_write_file: write the full
// contents to "<path>.tmp", fsync, then rename(2) over the target.  A crash
// at any instant leaves either the old complete file or the new complete
// file — never a truncated hybrid.
#pragma once

#include <cstdint>
#include <string>

namespace stemcp::persist {

/// Write `contents` to `path` atomically (tmp file + fsync + rename).
/// Returns false with `error` set on any I/O failure; the target file is
/// never left partially written.
bool atomic_write_file(const std::string& path, const std::string& contents,
                       std::string* error);

/// Slurp `path`.  Returns false with `error` set when unreadable.
bool read_file(const std::string& path, std::string* out, std::string* error);

/// Create `path` and every missing ancestor (mkdir -p).  Used by the service
/// tier to carve per-shard journal namespaces ("<root>/shard-<i>/...").
/// Returns false with `error` set when a component cannot be created.
bool ensure_directories(const std::string& path, std::string* error);

/// Durable-state file naming: one base path yields the checkpoint and the
/// journal that continues it.
std::string checkpoint_path(const std::string& base);  // "<base>.ckpt"
std::string journal_path(const std::string& base);     // "<base>.journal"

struct CheckpointMeta {
  std::uint64_t seq = 0;    ///< last journal seq folded into the snapshot
  std::string session;      ///< session name the snapshot belongs to
  std::string options;      ///< open options, space separated (may be empty)
};

/// Render the "# stemcp-checkpoint ..." header line (newline included).
std::string encode_checkpoint_header(const CheckpointMeta& meta);

/// Parse the header out of checkpoint file `text`.  Returns false when the
/// first line is not a checkpoint header.
bool parse_checkpoint_header(const std::string& text, CheckpointMeta* out);

/// Atomically write checkpoint file: header + `library_text`.
bool write_checkpoint(const std::string& path, const CheckpointMeta& meta,
                      const std::string& library_text, std::string* error);

}  // namespace stemcp::persist
