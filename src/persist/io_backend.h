// Pluggable journal I/O backend (ROADMAP: group-commit async journaling;
// cf. the IoInterface / LibaioImpl layering of ssdiq-style I/O engines).
//
// The journal's write path reduces to two primitives: "write this iovec
// batch at the append position" and "flush the file to stable storage".
// Keeping them behind an interface lets the group-commit flusher coalesce a
// batch into one vectored write regardless of how the bytes reach the
// device, and lets an io_uring submission path slot in without touching
// journal logic.
//
// Backends:
//   - pwrite backend (always available): ::writev in a retry loop + ::fsync.
//   - io_uring backend (compile-time STEMCP_IO_URING CMake option, raw
//     syscalls — no liburing dependency): IORING_OP_WRITEV +
//     IORING_OP_FSYNC on a tiny single-issue ring.  If io_uring_setup is
//     unavailable at runtime (old kernel, seccomp), construction fails and
//     make_io_backend() falls back to the pwrite backend.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <memory>

namespace stemcp::persist {

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  /// Backend name for diagnostics ("pwrite" / "io_uring").
  virtual const char* name() const = 0;

  /// Write every byte of `iov[0..iovcnt)` (total `bytes`) to `fd` at the
  /// append position, retrying short writes and EINTR.  Returns false on a
  /// write error (the journal dead-latches).
  virtual bool write_all(int fd, const struct iovec* iov, int iovcnt,
                         std::size_t bytes) = 0;

  /// Flush `fd` to stable storage (fsync).  Returns false on failure.
  virtual bool flush(int fd) = 0;
};

/// The portable ::writev/::fsync backend.  Never fails to construct.
std::unique_ptr<IoBackend> make_pwrite_backend();

/// The best available backend: io_uring when compiled in (STEMCP_IO_URING)
/// and supported by the running kernel, the pwrite backend otherwise.
std::unique_ptr<IoBackend> make_io_backend();

/// True when the io_uring backend is compiled in AND the kernel accepts
/// io_uring_setup (probed once per call).
bool io_uring_available();

}  // namespace stemcp::persist
