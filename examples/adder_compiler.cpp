// Building a 5-bit adder with a GraphCompiler (thesis §6.4.1, Fig 6.2).
//
// A 1-bit full-adder slice is tiled five times; butting io-pins establish
// the ripple-carry chain automatically, the boundary carries are exposed as
// cell io, and the compiled cell's bounding box and delay network are
// derived by the environment.
#include <iostream>

#include "stem/stem.h"

using namespace stemcp;
using core::Rect;
using core::Transform;
using core::Value;
using env::SignalDirection;
using env::Side;

namespace {
constexpr double kNs = 1e-9;
}

int main() {
  env::Library lib("adder-compiler-demo");

  // The 1-bit slice: carry ripples left to right.
  auto& slice = lib.define_cell("FAdder");
  slice.bounding_box().set_user(Value(Rect{0, 0, 10, 20}));
  slice.declare_signal("cin", SignalDirection::kInput)
      .add_pin({0, 10}, Side::kLeft);
  slice.declare_signal("cout", SignalDirection::kOutput)
      .add_pin({10, 10}, Side::kRight);
  slice.declare_signal("a", SignalDirection::kInput)
      .add_pin({3, 20}, Side::kTop);
  slice.declare_signal("b", SignalDirection::kInput)
      .add_pin({7, 20}, Side::kTop);
  slice.declare_signal("sum", SignalDirection::kOutput)
      .add_pin({5, 0}, Side::kBottom);
  slice.declare_delay("cin", "cout");
  slice.set_leaf_delay("cin", "cout", 2 * kNs);

  // Compile the 5-bit adder.
  auto& adder5 = lib.define_cell("Adder5");
  env::GraphCompiler g;
  g.add_node("slice", slice, Transform{}, 5, Side::kRight);
  g.expose("slice.0", "cin", "carryIn");
  g.expose("slice.4", "cout", "carryOut");
  const env::CompileResult r = g.compile(adder5);

  std::cout << "compiled Adder5: " << r.instances << " slices, "
            << adder5.nets().size() << " nets, " << r.connections
            << " pin connections, status "
            << (r.status.is_ok() ? "ok" : "VIOLATION") << "\n";
  std::cout << "bounding box: "
            << adder5.bounding_box().demand().to_string() << "\n\n";

  // The compiled structure carries a real carry chain: derive its delay.
  auto& d = adder5.declare_delay("carryIn", "carryOut");
  adder5.build_delay_networks();
  std::cout << "carry chain: " << adder5.delay_paths("carryIn", "carryOut")
                                      .size()
            << " path(s); carryIn->carryOut = "
            << (d.value().is_number()
                    ? std::to_string(d.value().as_number() / kNs) + " ns"
                    : "unknown")
            << " (5 slices x 2 ns)\n\n";

  // Show each net the compiler created.
  for (const auto& net : adder5.nets()) {
    std::cout << net->qualified_name() << ":";
    for (const auto& c : net->connections()) {
      std::cout << ' '
                << (c.instance != nullptr ? c.instance->name() : "<io>")
                << '.' << c.signal;
    }
    std::cout << "\n";
  }

  // A faster slice drops in: the compiled cell's delay follows.
  std::cout << "\nre-characterizing the slice at 1.5 ns:\n";
  slice.set_leaf_delay("cin", "cout", 1.5 * kNs);
  std::cout << "carryIn->carryOut = " << d.value().as_number() / kNs
            << " ns\n";
  return 0;
}
