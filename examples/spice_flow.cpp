// External-tool integration round trip (thesis §6.4.2, Fig 6.3):
// SpiceNet extracts the net-list of a three-inverter chain, SpiceSimulation
// runs the (MiniSpice) transient analysis, SpicePlot measures and renders
// the waveforms — and editing the cell marks every view outdated.
#include <iostream>

#include "stem/stem.h"

using namespace stemcp;
using env::DeviceInfo;
using env::SignalDirection;

namespace {

env::CellClass& make_inverter(env::Library& lib) {
  auto& nmos = lib.define_cell("NMOS");
  nmos.declare_signal("d", SignalDirection::kInOut);
  nmos.declare_signal("g", SignalDirection::kInput);
  nmos.declare_signal("s", SignalDirection::kInOut);
  nmos.device().kind = DeviceInfo::Kind::kNmos;
  nmos.device().ron = 1e3;

  auto& pmos = lib.define_cell("PMOS");
  pmos.declare_signal("d", SignalDirection::kInOut);
  pmos.declare_signal("g", SignalDirection::kInput);
  pmos.declare_signal("s", SignalDirection::kInOut);
  pmos.device().kind = DeviceInfo::Kind::kPmos;
  pmos.device().ron = 2e3;

  auto& vdd = lib.define_cell("VDD");
  vdd.declare_signal("p", SignalDirection::kOutput);
  vdd.device().kind = DeviceInfo::Kind::kVoltageSource;
  vdd.device().value = 5.0;

  auto& load = lib.define_cell("CLOAD");
  load.declare_signal("p", SignalDirection::kInOut);
  load.device().kind = DeviceInfo::Kind::kCapacitor;
  load.device().value = 1e-13;

  auto& inv = lib.define_cell("INV");
  inv.declare_signal("in", SignalDirection::kInput);
  inv.declare_signal("out", SignalDirection::kOutput);
  inv.declare_signal("gnd", SignalDirection::kInOut);
  auto& mp = inv.add_subcell(pmos, "mp");
  auto& mn = inv.add_subcell(nmos, "mn");
  auto& vs = inv.add_subcell(vdd, "vs");
  auto& cl = inv.add_subcell(load, "cl");
  auto& n_in = inv.add_net("n_in");
  n_in.connect_io("in");
  n_in.connect(mp, "g");
  n_in.connect(mn, "g");
  auto& n_out = inv.add_net("n_out");
  n_out.connect_io("out");
  n_out.connect(mp, "d");
  n_out.connect(mn, "d");
  n_out.connect(cl, "p");
  auto& n_vdd = inv.add_net("n_vdd");
  n_vdd.connect(vs, "p");
  n_vdd.connect(mp, "s");
  auto& n_gnd = inv.add_net("n_gnd");
  n_gnd.connect_io("gnd");
  n_gnd.connect(mn, "s");
  return inv;
}

}  // namespace

int main() {
  env::Library lib("spice-demo");
  auto& inv = make_inverter(lib);

  // The thesis's Fig 6.3 example: three cascaded inverters.
  auto& chain = lib.define_cell("InvertingBuffer");
  chain.declare_signal("in", SignalDirection::kInput);
  chain.declare_signal("out", SignalDirection::kOutput);
  env::CellInstance* prev = nullptr;
  for (int i = 0; i < 3; ++i) {
    auto& u = chain.add_subcell(inv, "u" + std::to_string(i));
    auto& n = chain.add_net("n" + std::to_string(i));
    if (i == 0) {
      n.connect_io("in");
    } else {
      n.connect(*prev, "out");
    }
    n.connect(u, "in");
    prev = &u;
  }
  auto& n_out = chain.add_net("n_out");
  n_out.connect(*prev, "out");
  n_out.connect_io("out");

  // SpiceNet: extract and show the deck.
  env::spice::SpiceNet netlist(chain);
  std::cout << "=== extracted net-list ===\n" << netlist.text() << "\n";

  // SpiceSimulation: drive 'in' with a rising step and run.
  env::spice::SpiceSimulation sim(chain);
  sim.spec().tstop = 60e-9;
  sim.spec().tstep = 0.25e-9;
  sim.spec().pulses.push_back({"in", 0.0, 5.0, 10e-9, 1e-9});
  const auto& waves = sim.run();

  env::spice::SpicePlot plot(waves);
  std::cout << "=== waveforms ===\n";
  std::cout << plot.render("in", 60, 8);
  std::cout << plot.render("out", 60, 8);

  const auto delay = plot.delay_between("in", "out", 2.5);
  std::cout << "measured in->out delay @2.5V: "
            << (delay ? std::to_string(*delay * 1e9) + " ns" : "n/a")
            << "\n\n";

  // Edit the model: every SPICE view goes outdated (Fig 6.3's window
  // labels).
  chain.changed(env::kChangedStructure);
  std::cout << "after a structure edit: netlist outdated="
            << (netlist.outdated() ? "yes" : "no")
            << ", simulation outdated=" << (sim.outdated() ? "yes" : "no")
            << "\n";
  return 0;
}
