// Quickstart: the constraint propagation core in five minutes.
//
// Builds the simple network of thesis Fig 4.5 (an equality constraint and a
// maximum constraint), triggers propagation, shows violation handling with
// automatic restore (Fig 4.9), and runs dependency analysis (Figs
// 4.11/4.12).
#include <iostream>

#include "core/core.h"
#include "stem/editor.h"

using namespace stemcp;

int main() {
  core::PropagationContext ctx;

  // ---- Fig 4.5: V1 == V2, V4 = max(V2, V3) -------------------------------
  core::Variable v1(ctx, "fig45", "V1");
  core::Variable v2(ctx, "fig45", "V2");
  core::Variable v3(ctx, "fig45", "V3");
  core::Variable v4(ctx, "fig45", "V4");

  core::EqualityConstraint::among(ctx, {&v1, &v2});
  core::UniMaximumConstraint::max_of(ctx, v4, {&v2, &v3});

  v3.set_user(core::Value(7));
  v1.set_user(core::Value(5));
  std::cout << "after V1 := 5:\n  " << v2.to_string() << "\n  "
            << v4.to_string() << "\n";

  v1.set_user(core::Value(9));  // the thesis's worked example
  std::cout << "after V1 := 9:\n  " << v2.to_string() << "\n  "
            << v4.to_string() << "\n\n";

  // ---- violations restore the network ------------------------------------
  core::BoundConstraint::upper(ctx, v4, core::Value(20));
  const core::Status s = v1.set_user(core::Value(25));
  std::cout << "V1 := 25 (would push V4 past its <=20 bound): "
            << (s.is_violation() ? "VIOLATION" : "ok") << "\n  "
            << v1.to_string() << "  (restored)\n";
  if (ctx.last_violation()) {
    std::cout << "  " << ctx.last_violation()->to_string() << "\n\n";
  }

  // ---- dependency analysis ------------------------------------------------
  env::ConstraintInspector inspector(ctx);
  std::cout << env::ConstraintInspector::antecedent_report(v4) << "\n";
  std::cout << env::ConstraintInspector::consequence_report(v1) << "\n";

  // ---- network rendering (paste into graphviz) -----------------------------
  std::cout << env::ConstraintInspector::to_dot({&v1}) << "\n";

  const auto& st = ctx.stats();
  std::cout << "engine stats: " << st.sessions << " sessions, "
            << st.assignments << " assignments, " << st.activations
            << " constraint activations\n";
  return 0;
}
