// The closed tool-integration loop: extract a cell, simulate it, measure
// its delay, and feed the measurement into the constraint network — where
// hierarchical propagation immediately checks it against the budgets of
// every design using the cell (thesis chapters 6 and 7 combined).
#include <iostream>

#include "stem/netlist/characterize.h"
#include "stem/stem.h"

using namespace stemcp;
using env::DeviceInfo;
using env::SignalDirection;

namespace {
constexpr double kNs = 1e-9;

env::CellClass& make_inverter(env::Library& lib, double load_farads) {
  auto& nmos = lib.define_cell("NMOS");
  nmos.declare_signal("d", SignalDirection::kInOut);
  nmos.declare_signal("g", SignalDirection::kInput);
  nmos.declare_signal("s", SignalDirection::kInOut);
  nmos.device().kind = DeviceInfo::Kind::kNmos;
  auto& pmos = lib.define_cell("PMOS");
  pmos.declare_signal("d", SignalDirection::kInOut);
  pmos.declare_signal("g", SignalDirection::kInput);
  pmos.declare_signal("s", SignalDirection::kInOut);
  pmos.device().kind = DeviceInfo::Kind::kPmos;
  pmos.device().ron = 2e3;
  auto& vdd = lib.define_cell("VDD");
  vdd.declare_signal("p", SignalDirection::kOutput);
  vdd.device().kind = DeviceInfo::Kind::kVoltageSource;
  vdd.device().value = 5.0;
  auto& cl = lib.define_cell("CLOAD");
  cl.declare_signal("p", SignalDirection::kInOut);
  cl.device().kind = DeviceInfo::Kind::kCapacitor;
  cl.device().value = load_farads;

  auto& inv = lib.define_cell("INV");
  inv.declare_signal("in", SignalDirection::kInput);
  inv.declare_signal("out", SignalDirection::kOutput);
  inv.declare_signal("gnd", SignalDirection::kInOut);
  auto& mp = inv.add_subcell(pmos, "mp");
  auto& mn = inv.add_subcell(nmos, "mn");
  auto& vs = inv.add_subcell(vdd, "vs");
  auto& c = inv.add_subcell(cl, "cl");
  auto& a = inv.add_net("a");
  a.connect_io("in");
  a.connect(mp, "g");
  a.connect(mn, "g");
  auto& y = inv.add_net("y");
  y.connect_io("out");
  y.connect(mp, "d");
  y.connect(mn, "d");
  y.connect(c, "p");
  auto& p = inv.add_net("p");
  p.connect(vs, "p");
  p.connect(mp, "s");
  auto& g = inv.add_net("g");
  g.connect_io("gnd");
  g.connect(mn, "s");
  return inv;
}
}  // namespace

int main() {
  env::Library lib("characterize-demo");
  auto& inv = make_inverter(lib, 2e-13);
  // Declare the critical delay up front so containing designs build their
  // delay networks over it (thesis §7.3: only declared delays participate).
  inv.declare_delay("in", "out");

  // The inverter sits in a 4-stage buffer with a 2 ns budget.
  auto& buf = lib.define_cell("BUF4");
  buf.declare_signal("in", SignalDirection::kInput);
  buf.declare_signal("out", SignalDirection::kOutput);
  auto& budget = buf.declare_delay("in", "out");
  core::BoundConstraint::upper(lib.context(), budget, core::Value(2 * kNs));
  env::CellInstance* prev = nullptr;
  for (int i = 0; i < 4; ++i) {
    auto& u = buf.add_subcell(inv, "u" + std::to_string(i));
    auto& n = buf.add_net("n" + std::to_string(i));
    if (i == 0) {
      n.connect_io("in");
    } else {
      n.connect(*prev, "out");
    }
    n.connect(u, "in");
    prev = &u;
  }
  auto& n_out = buf.add_net("n_out");
  n_out.connect(*prev, "out");
  n_out.connect_io("out");
  buf.build_delay_networks();

  std::cout << "BUF4 = 4 x INV, budget 2 ns; characterizing INV by "
               "simulation...\n";
  const auto result = env::spice::characterize_delay(inv, "in", "out");
  if (result.measured) {
    std::cout << "  measured INV delay: " << *result.measured * 1e9
              << " ns\n";
  }
  std::cout << "  assignment "
            << (result.status.is_ok() ? "ACCEPTED" : "REJECTED") << "\n";
  if (budget.value().is_number()) {
    std::cout << "  BUF4 in->out = " << budget.value().as_number() * 1e9
              << " ns (4 x measured)\n";
  }

  // A heavier load on the inverter output: the re-measurement now blows the
  // buffer budget and is rejected at the buffer level.
  std::cout << "\nprocess change: output load x20\n";
  lib.cell("CLOAD").device().value = 4e-12;
  inv.changed(env::kChangedStructure);  // outdate derived data
  const auto slow = env::spice::characterize_delay(inv, "in", "out");
  if (slow.measured) {
    std::cout << "  measured INV delay: " << *slow.measured * 1e9 << " ns\n";
  }
  std::cout << "  assignment "
            << (slow.status.is_ok() ? "ACCEPTED" : "REJECTED — budget blown "
                                                   "one level up, rolled "
                                                   "back")
            << "\n";
  if (lib.context().last_violation()) {
    std::cout << "  " << lib.context().last_violation()->to_string() << "\n";
  }
  return 0;
}
