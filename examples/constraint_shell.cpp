// The constraint editor as a command shell (thesis §5.4).  Reads commands
// from stdin when interactive; otherwise replays a demonstration script over
// the Fig 5.2 accumulator design.
#include <iostream>
#include <string>

#include "stem/shell.h"
#include "stem/stem.h"

using namespace stemcp;
using env::SignalDirection;

namespace {
constexpr double kNs = 1e-9;
}

int main(int argc, char** argv) {
  env::Library lib("shell-demo");
  auto& reg = lib.define_cell("REGISTER");
  reg.declare_signal("in", SignalDirection::kInput);
  reg.declare_signal("out", SignalDirection::kOutput);
  auto& reg_delay = reg.declare_delay("in", "out");
  auto& adder = lib.define_cell("ADDER");
  adder.declare_signal("a", SignalDirection::kInput);
  adder.declare_signal("out", SignalDirection::kOutput);
  auto& adder_delay = adder.declare_delay("a", "out");
  auto& acc = lib.define_cell("ACCUMULATOR");
  acc.declare_signal("in", SignalDirection::kInput);
  acc.declare_signal("out", SignalDirection::kOutput);
  auto& acc_delay = acc.declare_delay("in", "out");
  core::BoundConstraint::upper(lib.context(), acc_delay,
                               core::Value(160 * kNs));
  auto& r = acc.add_subcell(reg, "reg");
  auto& a = acc.add_subcell(adder, "add");
  auto& n_in = acc.add_net("n_in");
  n_in.connect_io("in");
  n_in.connect(r, "in");
  auto& mid = acc.add_net("n_mid");
  mid.connect(r, "out");
  mid.connect(a, "a");
  auto& n_out = acc.add_net("n_out");
  n_out.connect(a, "out");
  n_out.connect_io("out");
  acc.build_delay_networks();

  env::ConstraintShell shell(lib.context());
  shell.register_variable("reg.delay", reg_delay);
  shell.register_variable("adder.delay", adder_delay);
  shell.register_variable("acc.delay", acc_delay);

  const bool scripted = argc > 1 && std::string(argv[1]) == "--script";
  if (scripted || !std::cin.good()) {
    // Demonstration script: the Fig 5.2 story as shell commands.
    const char* script[] = {
        "vars",
        "set reg.delay 60e-9",
        "show acc.delay",
        "probe adder.delay 110e-9",  // would blow the 160 ns budget
        "set adder.delay 90e-9",
        "show acc.delay",
        "antecedents acc.delay",
        "constraints acc.delay",
        "warnings",
    };
    for (const char* cmd : script) {
      std::cout << "> " << cmd << "\n" << shell.execute(cmd);
    }
    return 0;
  }

  std::cout << "stemcp constraint shell — 'help' for commands, ctrl-d to "
               "exit\n";
  std::string line;
  while (std::cout << "> " && std::getline(std::cin, line)) {
    std::cout << shell.execute(line);
  }
  return 0;
}
