// The constraint editor as a command shell (thesis §5.4).  Reads commands
// from stdin when interactive; otherwise replays a demonstration script over
// the Fig 5.2 accumulator design, then drives the design service through
// eight concurrent sessions of mixed load/assign/edit/save traffic.
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "service/design_service.h"
#include "service/protocol.h"
#include "stem/shell.h"
#include "stem/stem.h"
#include "workload/recorder.h"
#include "workload/replay.h"

using namespace stemcp;
using env::SignalDirection;

namespace {

constexpr double kNs = 1e-9;

// A small pipeline design as service library text: one line per statement,
// joined with the protocol's "\n" escape when sent through the shell.
const char* kServiceDesign =
    "cell STAGE\\n"
    "signal in input\\n"
    "signal out output\\n"
    "delay in out\\n"
    "spec <= 1e-7\\n"
    "end\\n";

// A module-selection design (thesis §8, docs/SOLVER.md): a generic adder
// with a slow-but-small ripple-carry and a fast-but-large carry-select
// realization, instantiated under a 6 ns delay budget.  Only the
// carry-select meets it — `service select` finds that without probing the
// engine per candidate.
const char* kSelectionDesign =
    "cell ADD generic\\n"
    "signal a input\\nsignal out output\\ndelay a out\\nend\\n"
    "cell ADD.RC super ADD\\n"
    "bbox 0 0 8 10\\n"
    "signal a input\\nsignal out output\\ndelay a out value 8e-9\\nend\\n"
    "cell ADD.CS super ADD\\n"
    "bbox 0 0 8 22\\n"
    "signal a input\\nsignal out output\\ndelay a out value 5e-9\\nend\\n"
    "cell ALU\\n"
    "signal a input\\nsignal out output\\n"
    "delay a out\\nspec <= 6e-9\\n"
    "subcell add ADD R0 0 0\\n"
    "net n_in\\nio a\\nconn add a\\n"
    "net n_out\\nconn add out\\nio out\\n"
    "end\\n";

// Drive N sessions concurrently through open → load → edits → batched
// assignments → save → close, every request submitted asynchronously.
// Returns the number of request-level failures (violations are outcomes,
// not failures).
int concurrent_sessions_demo(service::DesignService& svc, int n) {
  using service::Request;
  using service::RequestType;
  std::cout << "\n-- design service: " << n << " concurrent sessions over "
            << svc.shard_count() << " shard(s) x "
            << svc.sessions().workers_per_shard() << " workers --\n";

  int failures = 0;
  std::vector<std::future<service::Response>> waves;
  auto settle = [&waves, &failures] {
    for (auto& f : waves) {
      if (!f.get().ok) ++failures;
    }
    waves.clear();
  };
  auto req = [](RequestType t, const std::string& session,
                std::string text = {}) {
    Request r;
    r.type = t;
    r.session = session;
    r.text = std::move(text);
    return r;
  };

  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back("sess" + std::to_string(i));

  for (const auto& s : names) {
    waves.push_back(svc.submit(req(RequestType::kOpen, s, "metrics")));
  }
  settle();

  // Mixed traffic, all in flight at once: edits build a two-stage pipeline
  // with a per-session delay budget, then one batched assignment propagates
  // both stage delays in a single wave.
  for (int i = 0; i < n; ++i) {
    const std::string& s = names[i];
    waves.push_back(svc.submit(req(RequestType::kEdit, s, "cell STAGE")));
  }
  settle();
  const char* build[] = {
      "signal STAGE in input",   "signal STAGE out output",
      "delay STAGE in out",      "cell PIPE",
      "signal PIPE in input",    "signal PIPE out output",
      "spec PIPE in out <= 2e-7",
      "subcell PIPE s0 STAGE",   "subcell PIPE s1 STAGE 10 0",
      "net PIPE n_in",           "io PIPE n_in in",
      "conn PIPE n_in s0 in",    "net PIPE n_mid",
      "conn PIPE n_mid s0 out",  "conn PIPE n_mid s1 in",
      "net PIPE n_out",          "conn PIPE n_out s1 out",
      "io PIPE n_out out",       "build-delays PIPE",
  };
  for (const char* step : build) {
    for (const auto& s : names) {
      waves.push_back(svc.submit(req(RequestType::kEdit, s, step)));
    }
    settle();
  }

  // Batched assignment: each session gets its own stage delays, coalesced
  // into ONE propagation wave per request.
  for (int i = 0; i < n; ++i) {
    Request r = req(RequestType::kBatchAssign, names[i]);
    const double d = (40 + i) * kNs;
    r.assignments.push_back({"PIPE/s0.delay(in->out)", d});
    r.assignments.push_back({"PIPE/s1.delay(in->out)", d + 5 * kNs});
    waves.push_back(svc.submit(std::move(r)));
  }
  for (int i = 0; i < n; ++i) {
    const service::Response resp = waves[i].get();
    if (!resp.ok) ++failures;
    std::cout << names[i] << ": "
              << (resp.ok ? "applied " + std::to_string(resp.assignments_applied)
                          : "error " + resp.error)
              << (resp.violation ? " VIOLATION" : "") << '\n';
  }
  waves.clear();

  // Verify isolation: every session holds its own values.
  for (int i = 0; i < n; ++i) {
    waves.push_back(svc.submit(
        req(RequestType::kQuery, names[i], "PIPE.delay(in->out)")));
  }
  for (int i = 0; i < n; ++i) {
    const service::Response resp = waves[i].get();
    if (!resp.ok) ++failures;
    std::cout << names[i] << " " << resp.text;
  }
  waves.clear();

  for (const auto& s : names) {
    waves.push_back(svc.submit(req(RequestType::kSave, s)));
  }
  settle();
  for (const auto& s : names) {
    waves.push_back(svc.submit(req(RequestType::kClose, s)));
  }
  settle();
  std::cout << "served " << svc.requests_served() << " requests, "
            << svc.sessions().size() << " sessions remain\n";
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  env::Library lib("shell-demo");
  auto& reg = lib.define_cell("REGISTER");
  reg.declare_signal("in", SignalDirection::kInput);
  reg.declare_signal("out", SignalDirection::kOutput);
  auto& reg_delay = reg.declare_delay("in", "out");
  auto& adder = lib.define_cell("ADDER");
  adder.declare_signal("a", SignalDirection::kInput);
  adder.declare_signal("out", SignalDirection::kOutput);
  auto& adder_delay = adder.declare_delay("a", "out");
  auto& acc = lib.define_cell("ACCUMULATOR");
  acc.declare_signal("in", SignalDirection::kInput);
  acc.declare_signal("out", SignalDirection::kOutput);
  auto& acc_delay = acc.declare_delay("in", "out");
  core::BoundConstraint::upper(lib.context(), acc_delay,
                               core::Value(160 * kNs));
  auto& r = acc.add_subcell(reg, "reg");
  auto& a = acc.add_subcell(adder, "add");
  auto& n_in = acc.add_net("n_in");
  n_in.connect_io("in");
  n_in.connect(r, "in");
  auto& mid = acc.add_net("n_mid");
  mid.connect(r, "out");
  mid.connect(a, "a");
  auto& n_out = acc.add_net("n_out");
  n_out.connect(a, "out");
  n_out.connect_io("out");
  acc.build_delay_networks();

  env::ConstraintShell shell(lib.context());
  shell.register_variable("reg.delay", reg_delay);
  shell.register_variable("adder.delay", adder_delay);
  shell.register_variable("acc.delay", acc_delay);

  // --shards N shards the service tier by session-id hash (4 workers per
  // shard); every other knob stays protocol-compatible.
  std::size_t shards = 1;
  bool scripted = false;
  // --ignore-errors: demos that intentionally show failing commands can opt
  // out of the nonzero exit a scripted error otherwise forces.
  bool ignore_errors = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--script") {
      scripted = true;
    } else if (arg == "--ignore-errors") {
      ignore_errors = true;
    } else if (arg == "--shards" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n > 0) shards = static_cast<std::size_t>(n);
    } else {
      std::cerr << "usage: constraint_shell [--script] [--ignore-errors] "
                   "[--shards N]\n";
      return 2;
    }
  }

  service::DesignService svc(4, shards);
  service::ServiceFrontEnd front(svc);
  shell.attach_service([&front](const std::string& l) {
    return front.execute(l);
  });

  // Workload verbs (docs/WORKLOAD.md): `record start/stop/status` taps this
  // service's live traffic into a trace file; `replay <trace>` drives a
  // FRESH service with a trace and prints the report.
  std::unique_ptr<workload::TraceRecorder> recorder;
  shell.attach_workload([&svc, &recorder](const std::string& line) {
    std::istringstream in(line);
    std::string verb, sub;
    in >> verb;
    if (verb == "record") {
      in >> sub;
      if (sub == "start") {
        std::string path;
        in >> path;
        if (path.empty()) return std::string("error: record start <trace-file>\n");
        if (recorder != nullptr) {
          return "error: already recording to " + recorder->path() + "\n";
        }
        std::string err;
        recorder = workload::TraceRecorder::open(path, &err);
        if (recorder == nullptr) return "error: " + err + "\n";
        svc.set_request_tap(recorder->tap());
        return "recording service traffic to " + path + "\n";
      }
      if (sub == "stop") {
        if (recorder == nullptr) return std::string("error: not recording\n");
        svc.set_request_tap({});
        std::string err;
        const bool closed = recorder->finish(&err);
        const workload::TraceRecorder::Stats stats = recorder->stats();
        std::ostringstream out;
        if (!closed) {
          out << "error: " << err << "\n";
        } else {
          out << stats.records << " record(s) written to " << recorder->path();
          if (stats.drops > 0) out << " (" << stats.drops << " drop(s))";
          out << "\n";
        }
        recorder.reset();
        return out.str();
      }
      if (sub == "status") {
        if (recorder == nullptr) return std::string("not recording\n");
        const workload::TraceRecorder::Stats stats = recorder->stats();
        std::ostringstream out;
        out << "recording to " << recorder->path() << ": " << stats.records
            << " record(s), " << stats.drops << " drop(s)\n";
        return out.str();
      }
      return std::string("error: record start <trace-file> | stop | status\n");
    }
    // replay <trace> [closed-loop] [speed <x>]
    std::string trace;
    in >> trace;
    if (trace.empty()) {
      return std::string("error: replay <trace-file> [closed-loop] [speed <x>]\n");
    }
    workload::ReplayOptions opts;
    std::string opt;
    while (in >> opt) {
      if (opt == "closed-loop") {
        opts.closed_loop = true;
      } else if (opt == "speed") {
        if (!(in >> opts.speed) || opts.speed <= 0.0) {
          return std::string("error: speed needs a number > 0\n");
        }
      } else {
        return "error: unknown replay option '" + opt + "'\n";
      }
    }
    workload::ReplayReport report;
    std::string err;
    if (!workload::replay_file(trace, opts, &report, &err)) {
      return "error: " + err + "\n";
    }
    return report.render();
  });
  if (scripted || !std::cin.good()) {
    // Demonstration script: the Fig 5.2 story as shell commands, then the
    // same engine as a multi-session service behind `service ...`.
    const std::string load_a =
        std::string("service load a text ") + kServiceDesign;
    const std::string load_b =
        std::string("service load b text ") + kSelectionDesign;
    const std::string load_c =
        std::string("service load c text ") + kServiceDesign;
    const char* script[] = {
        "vars",
        "set reg.delay 60e-9",
        "show acc.delay",
        "probe adder.delay 110e-9",  // would blow the 160 ns budget
        "set adder.delay 90e-9",
        "show acc.delay",
        "antecedents acc.delay",
        "constraints acc.delay",
        "warnings",
        "service open a metrics",
        load_a.c_str(),
        "service query a cells",
        "service batch-assign a STAGE.delay(in->out) 4e-8",
        "service query a STAGE.delay(in->out)",
        "service sessions",
        // Durability: journal the session, checkpoint, journal one more
        // wave, then close and rebuild it by replaying the log through the
        // engine (docs/PERSISTENCE.md).
        "service journal a /tmp/stemcp_shell_demo none",
        "service batch-assign a STAGE.delay(in->out) 5e-8",
        "service checkpoint a",
        "service batch-assign a STAGE.delay(in->out) 6e-8",
        "service close a",
        "service recover a /tmp/stemcp_shell_demo",
        "service query a STAGE.delay(in->out)",
        "service close a",
        // Module selection (§8, docs/SOLVER.md): enumerate feasible
        // realizations of the generic adder under the ALU's delay budget,
        // then commit the winner and read the now-concrete ALU delay.
        "service open b",
        load_b.c_str(),
        "service select-stats b ALU",
        "service select b ALU limit 0",
        "service select b ALU commit",
        "service query b ALU.delay(a->out)",
        "service query b stats",
        "service close b",
        // Workload record/replay (docs/WORKLOAD.md): tap the live service,
        // run a short session, then replay the captured trace into a fresh
        // service as fast as it will absorb it.
        "record status",
        "record start /tmp/stemcp_shell_demo.trace",
        "service open c",
        load_c.c_str(),
        "service assign c STAGE.delay(in->out) 4e-8",
        "service query c STAGE.delay(in->out)",
        "service close c",
        "record stop",
        "replay /tmp/stemcp_shell_demo.trace closed-loop",
    };
    // A scripted line that comes back "error: ..." fails the run (exit 1)
    // unless --ignore-errors: CI scripts must not silently pass over
    // failures.
    int script_failures = 0;
    for (const char* cmd : script) {
      const std::string out = shell.execute(cmd);
      std::cout << "> " << cmd << "\n" << out;
      if (out.rfind("error:", 0) == 0) {
        ++script_failures;
        std::cerr << "script command failed: " << cmd << "\n";
      }
    }
    script_failures += concurrent_sessions_demo(svc, 8);
    if (script_failures > 0) {
      std::cerr << script_failures << " scripted command(s) failed\n";
      if (!ignore_errors) return 1;
    }
    return 0;
  }

  std::cout << "stemcp constraint shell — 'help' for commands, ctrl-d to "
               "exit\n";
  std::string line;
  while (std::cout << "> " && std::getline(std::cin, line)) {
    std::cout << shell.execute(line);
  }
  return 0;
}
