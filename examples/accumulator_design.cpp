// Least-commitment design of an accumulator (thesis §1.1 and Fig 5.2).
//
// ACCUMULATOR = REGISTER -> ADDER with an overall 160 ns delay budget.
// A pure top-down flow would split the budget up front (say 60/100); the
// least-commitment flow only asserts sum <= 160 ns and lets each subcell's
// *characteristic* delay, as soon as it is known, refine the implicit
// budget of the other.  Hierarchical constraint propagation performs the
// bookkeeping.
#include <iostream>

#include "stem/stem.h"

using namespace stemcp;
using env::SignalDirection;

namespace {
constexpr double kNs = 1e-9;

void report(const char* when, const env::ClassDelayVar& d) {
  std::cout << "  [" << when << "] " << d.path() << " = "
            << (d.value().is_number()
                    ? std::to_string(d.value().as_number() / kNs) + " ns"
                    : "unknown")
            << "\n";
}
}  // namespace

int main() {
  env::Library lib("accumulator-demo");

  // Leaf interfaces first — no internals committed yet.
  auto& reg = lib.define_cell("REGISTER");
  reg.declare_signal("in", SignalDirection::kInput);
  reg.declare_signal("out", SignalDirection::kOutput);
  reg.declare_delay("in", "out");

  auto& adder = lib.define_cell("ADDER");
  adder.declare_signal("a", SignalDirection::kInput);
  adder.declare_signal("b", SignalDirection::kInput);
  adder.declare_signal("out", SignalDirection::kOutput);
  auto& adder_delay = adder.declare_delay("a", "out");
  // The designer's own spec on the adder (thesis Fig 5.2): 120 ns or less.
  core::BoundConstraint::upper(lib.context(), adder_delay,
                               core::Value(120 * kNs));

  auto& acc = lib.define_cell("ACCUMULATOR");
  acc.declare_signal("in", SignalDirection::kInput);
  acc.declare_signal("out", SignalDirection::kOutput);
  auto& acc_delay = acc.declare_delay("in", "out");
  core::BoundConstraint::upper(lib.context(), acc_delay,
                               core::Value(160 * kNs));

  // Structure: in -> REGISTER -> ADDER -> out.
  auto& r = acc.add_subcell(reg, "reg");
  auto& a = acc.add_subcell(adder, "add");
  acc.add_net("n_in").connect_io("in");
  acc.find_net("n_in")->connect(r, "in");
  auto& mid = acc.add_net("n_mid");
  mid.connect(r, "out");
  mid.connect(a, "a");
  auto& out = acc.add_net("n_out");
  out.connect(a, "out");
  out.connect_io("out");
  acc.build_delay_networks();

  std::cout << "accumulator delay budget: 160 ns; adder spec: 120 ns\n";
  report("initial", acc_delay);

  // The register team characterizes first: 60 ns.
  reg.set_leaf_delay("in", "out", 60 * kNs);
  std::cout << "\nREGISTER characterized at 60 ns\n";
  report("after register", acc_delay);
  std::cout << "  (the adder's implicit budget is now 100 ns, not a "
               "committed 100 ns spec)\n";

  // The adder team proposes a 110 ns design: legal against the adder's own
  // 120 ns spec, but propagation checks it in the GLOBAL context and finds
  // the accumulator budget blown (60 + 110 = 170 > 160).
  std::cout << "\nADDER proposal #1: 110 ns\n";
  const core::Status s1 = adder.set_leaf_delay("a", "out", 110 * kNs);
  std::cout << "  accepted? " << (s1.is_ok() ? "yes" : "NO — violation, "
                                                       "rolled back")
            << "\n";
  if (lib.context().last_violation()) {
    std::cout << "  " << lib.context().last_violation()->to_string() << "\n";
  }
  report("after rejected proposal", acc_delay);

  // Second proposal fits.
  std::cout << "\nADDER proposal #2: 90 ns\n";
  const core::Status s2 = adder.set_leaf_delay("a", "out", 90 * kNs);
  std::cout << "  accepted? " << (s2.is_ok() ? "yes" : "no") << "\n";
  report("final", acc_delay);

  // The register improving later relaxes the whole chain automatically.
  std::cout << "\nREGISTER improves to 40 ns\n";
  reg.set_leaf_delay("in", "out", 40 * kNs);
  report("after register rev2", acc_delay);

  std::cout << "\nbatch audit: "
            << env::DesignChecker::check(acc).to_string();
  return 0;
}
