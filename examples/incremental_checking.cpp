// Incremental design checking (thesis ch. 7): signal types and bounding
// boxes checked as the design is entered, not in a batch pass afterwards.
#include <iostream>

#include "stem/stem.h"

using namespace stemcp;
using core::Rect;
using core::Transform;
using core::Value;
using env::SignalDirection;

int main() {
  env::Library lib("incremental-demo");
  auto& types = lib.types();

  // ---- thesis Fig 7.1: bit-width violation -------------------------------
  std::cout << "=== bit widths (Fig 7.1) ===\n";
  auto& a = lib.define_cell("A");
  a.declare_signal("in1", SignalDirection::kInput);
  a.signal("in1").bit_width().set_user(Value(8));
  std::cout << "class A.in1 constrained to 8 bits\n";

  auto& new_cell = lib.define_cell("NewCell");
  auto& inst = new_cell.add_subcell(a, "instA");
  auto& n4 = new_cell.add_net("n4");
  n4.bit_width().set_user(Value(4));
  const core::Status s = n4.connect(inst, "in1");
  std::cout << "connect 4-bit net to instA.in1: "
            << (s.is_violation() ? "VIOLATION (caught at entry time)" : "ok")
            << "\n";
  std::cout << "  " << lib.context().violation_log().back() << "\n\n";

  // ---- type inference reduces data entry -----------------------------------
  std::cout << "=== signal types ===\n";
  auto& src = lib.define_cell("SRC");
  src.declare_signal("q", SignalDirection::kOutput);
  src.signal("q").data_type().set_user(
      env::type_value(types.at("BCDSignal")));
  auto& dst = lib.define_cell("DST");
  dst.declare_signal("d", SignalDirection::kInput);  // type unspecified

  auto& top = lib.define_cell("TOP");
  auto& is = top.add_subcell(src, "s");
  auto& id = top.add_subcell(dst, "d");
  auto& bus = top.add_net("bus");
  bus.connect(is, "q");
  bus.connect(id, "d");
  std::cout << "after wiring SRC.q (BCDSignal) to DST.d (unspecified):\n";
  std::cout << "  net type:   " << bus.data_type().value().to_string()
            << "\n";
  std::cout << "  DST.d type: "
            << dst.signal("d").data_type().value().to_string()
            << "   <- inferred, no data entry needed\n\n";

  // ---- bounding boxes up the hierarchy --------------------------------------
  std::cout << "=== bounding boxes ===\n";
  auto& leaf = lib.define_cell("LEAF");
  leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10}));
  auto& block = lib.define_cell("BLOCK");
  block.add_subcell(leaf, "l1", Transform::translate({0, 0}));
  auto& l2 = block.add_subcell(leaf, "l2", Transform::translate({10, 0}));
  std::cout << "BLOCK = two LEAFs side by side: "
            << block.bounding_box().demand().to_string() << "\n";

  // Designer pins l2's placement, then the leaf grows too much.
  l2.bounding_box().set_user(Value(Rect{10, 0, 22, 12}));
  const core::Status grow =
      leaf.bounding_box().set_user(Value(Rect{0, 0, 30, 30}));
  std::cout << "grow LEAF to 30x30 against l2's 12x12 placement: "
            << (grow.is_violation() ? "VIOLATION, class box rolled back"
                                    : "ok")
            << "\n";
  std::cout << "LEAF class box is still "
            << leaf.bounding_box().value().to_string() << "\n";

  // A legal growth ripples through: placements re-default, parent box
  // recalculates lazily.
  leaf.bounding_box().set_user(Value(Rect{0, 0, 12, 12}));
  std::cout << "grow LEAF to 12x12: BLOCK recalculates to "
            << block.bounding_box().demand().to_string() << "\n\n";

  std::cout << "final audit: " << env::DesignChecker::check(lib).to_string();
  return 0;
}
