// Layout compaction two ways (thesis §2.1.1 / §7.4): the general constraint
// framework handles spacing constraints correctly but a dedicated
// constraint-graph compactor is what low-level layout really needs — the
// applicability boundary the thesis draws for its own approach.
#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "core/core.h"
#include "stem/layout/compaction.h"

using namespace stemcp;
using core::Value;

namespace {

constexpr int kCells = 6;
constexpr core::Coord kWidths[kCells] = {12, 8, 20, 8, 16, 10};
constexpr core::Coord kSpacing = 3;

}  // namespace

int main() {
  // A row of six cells with minimum design-rule spacing between neighbours
  // and a pinned power strap at x = 30.
  std::cout << "row of " << kCells << " cells, min spacing " << kSpacing
            << ", cell 2 pinned at x=30\n\n";

  // --- dedicated compactor -------------------------------------------------
  env::layout::CompactionGraph g;
  std::vector<env::layout::NodeId> nodes;
  for (int i = 0; i < kCells; ++i) {
    nodes.push_back(g.add_node("cell" + std::to_string(i)));
  }
  g.add_spacing(0, nodes[0], 0);
  for (int i = 0; i + 1 < kCells; ++i) {
    g.add_spacing(nodes[i], nodes[i + 1], kWidths[i] + kSpacing);
  }
  g.pin(nodes[2], 30);
  const auto sol = g.compact();
  if (!sol) {
    std::cout << "over-constrained!\n";
    return 1;
  }
  std::cout << "graph compaction (longest path):\n";
  for (int i = 0; i < kCells; ++i) {
    std::cout << "  cell" << i << " @ x=" << sol->position[nodes[i]] << "\n";
  }
  std::cout << "  row width " << sol->width << "\n\n";

  // --- general framework ---------------------------------------------------
  core::PropagationContext ctx;
  std::vector<std::unique_ptr<core::Variable>> xs;
  std::vector<core::Constraint*> cons;
  ctx.set_enabled(false);
  for (int i = 0; i < kCells; ++i) {
    xs.push_back(std::make_unique<core::Variable>(
        ctx, "row", "cell" + std::to_string(i)));
    xs.back()->set(Value(0.0), i == 2 ? core::Justification::user()
                                      : core::Justification::application());
  }
  xs[2]->set(Value(30.0), core::Justification::user());  // the pin
  ctx.set_enabled(true);
  for (int i = 0; i + 1 < kCells; ++i) {
    cons.push_back(&core::SpacingConstraint::apart(
        ctx, *xs[i], *xs[i + 1],
        static_cast<double>(kWidths[i] + kSpacing)));
  }
  const auto result = core::RelaxationSolver::solve(ctx, cons);
  std::cout << "general framework (relaxation, " << result.sweeps
            << " sweeps, " << result.adjustments << " adjustments):\n";
  for (int i = 0; i < kCells; ++i) {
    std::cout << "  cell" << i << " @ x=" << xs[i]->value().as_number()
              << (i == 2 ? "   (pinned)" : "") << "\n";
  }

  // --- the speed gap --------------------------------------------------------
  constexpr int kReps = 2000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kReps; ++r) {
    auto s = g.compact();
    if (!s) return 1;
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::cout << "\n" << kReps << " graph compactions: "
            << std::chrono::duration<double, std::milli>(t1 - t0).count()
            << " ms — run bench_layout_compaction for the full comparison\n";
  return 0;
}
