// Module selection for an ALU (thesis ch. 8, Fig 8.1).
//
// ALU = LU8 -> generic ADD8.  The generic adder defers the implementation
// choice; automated module selection later picks a realization that
// satisfies the *context's* constraints: a tight area budget selects the
// ripple-carry adder, a tight delay budget selects the carry-select adder.
#include <iostream>

#include "fd/selection.h"
#include "stem/stem.h"

using namespace stemcp;
using core::Rect;
using core::Transform;
using core::Value;
using env::SignalDirection;

namespace {
constexpr double kNs = 1e-9;

struct Alu {
  env::Library lib{"alu-demo"};
  env::CellClass* add8;
  env::CellClass* add8_rc;
  env::CellClass* add8_cs;
  env::CellClass* alu;
  env::CellInstance* adder_slot;
  env::ClassDelayVar* alu_delay;

  Alu() {
    add8 = &lib.define_cell("ADD8");
    add8->set_generic(true);
    add8->declare_signal("in", SignalDirection::kInput);
    add8->declare_signal("out", SignalDirection::kOutput);
    add8->declare_delay("in", "out");

    add8_rc = &lib.define_cell("ADD8.RC", add8);
    add8_rc->set_leaf_delay("in", "out", 8 * kNs);
    add8_rc->bounding_box().set_user(Value(Rect{0, 0, 8, 10}));  // area A

    add8_cs = &lib.define_cell("ADD8.CS", add8);
    add8_cs->set_leaf_delay("in", "out", 5 * kNs);
    add8_cs->bounding_box().set_user(Value(Rect{0, 0, 8, 22}));  // 2.2A

    auto& lu8 = lib.define_cell("LU8");
    lu8.declare_signal("in", SignalDirection::kInput);
    lu8.declare_signal("out", SignalDirection::kOutput);
    lu8.set_leaf_delay("in", "out", 3 * kNs);
    lu8.bounding_box().set_user(Value(Rect{0, 0, 8, 20}));

    alu = &lib.define_cell("ALU");
    alu->declare_signal("in", SignalDirection::kInput);
    alu->declare_signal("out", SignalDirection::kOutput);
    alu_delay = &alu->declare_delay("in", "out");

    auto& lu = alu->add_subcell(lu8, "lu", Transform::translate({0, 0}));
    adder_slot = &alu->add_subcell(*add8, "add", Transform::translate({0, 20}));
    auto& n_in = alu->add_net("n_in");
    n_in.connect_io("in");
    n_in.connect(lu, "in");
    auto& n_mid = alu->add_net("n_mid");
    n_mid.connect(lu, "out");
    n_mid.connect(*adder_slot, "in");
    auto& n_out = alu->add_net("n_out");
    n_out.connect(*adder_slot, "out");
    n_out.connect_io("out");
    alu->build_delay_networks();
  }
};

void run_case(const char* label, core::Coord slot_height, double budget_ns) {
  Alu f;
  f.adder_slot->bounding_box().set_user(
      Value(Rect{0, 20, 8, 20 + slot_height}));
  core::BoundConstraint::upper(f.lib.context(), *f.alu_delay,
                               Value(budget_ns * kNs));

  std::cout << label << " (adder slot 8x" << slot_height << ", ALU budget "
            << budget_ns << " ns):\n";
  const auto found = f.add8->select_realizations_for(*f.adder_slot, {});
  if (found.empty()) {
    std::cout << "  no valid realization\n";
  }
  for (const env::CellClass* c : found) {
    std::cout << "  valid realization: " << c->name() << "\n";
  }
  const auto& stats = f.lib.selection_stats();
  std::cout << "  (generate-and-test: " << stats.candidates_tested
            << " candidates tested, " << stats.delay_checks
            << " delay probes, " << stats.bbox_checks << " bbox checks)\n";

  // The same question through the FD solver (docs/SOLVER.md): one
  // set-domain variable over the candidate realizations, pruned by
  // arithmetic filters instead of per-candidate propagation probes.
  fd::SelectionSpace space(f.lib);
  space.add_slot(*f.add8, *f.adder_slot);
  std::size_t fd_found = 0;
  if (space.establish()) fd_found = space.solve(0);
  for (std::size_t i = 0; i < fd_found; ++i) {
    std::cout << "  fd solution: " << space.solutions()[i][0]->name() << "\n";
  }
  if (fd_found == 0) std::cout << "  fd: no valid realization\n";
  std::cout << "  (fd: " << space.stats().candidates_explored
            << " candidates explored, " << space.stats().subtrees_pruned
            << " subtrees pruned, zero propagation probes)\n\n";
}
}  // namespace

int main() {
  std::cout << "ADD8.RC: 8 ns, area A      ADD8.CS: 5 ns, area 2.2A\n"
            << "LU8:     3 ns ahead of the adder in the critical path\n\n";

  // Thesis Fig 8.1(b): tight area, relaxed delay -> ripple carry.
  run_case("tight area", 10, 11.0);
  // Thesis Fig 8.1(c): relaxed area, tight delay -> carry select.
  run_case("tight delay", 42, 8.0);
  // Both relaxed: either would do.
  run_case("relaxed", 42, 20.0);
  // Both tight: the design point is infeasible.
  run_case("infeasible", 10, 8.0);

  // Committing a choice: replace the generic instance with the selected
  // realization and watch the ALU delay become concrete.
  Alu f;
  f.adder_slot->bounding_box().set_user(Value(Rect{0, 20, 8, 62}));
  core::BoundConstraint::upper(f.lib.context(), *f.alu_delay,
                               Value(8.0 * kNs));
  const auto found = f.add8->select_realizations_for(*f.adder_slot, {});
  if (!found.empty()) {
    std::cout << "committing " << found[0]->name() << " into the slot\n";
    env::CellInstance& committed =
        f.alu->replace_subcell(*f.adder_slot, *found[0]);
    f.alu->build_delay_networks();
    std::cout << "ALU in->out = " << f.alu_delay->value().as_number() / kNs
              << " ns (LU8 3 ns + " << committed.cls().name() << " 5 ns)\n";
  }
  return 0;
}
