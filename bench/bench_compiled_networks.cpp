// E9.3c — compiled constraint networks (thesis §9.3 future work #3):
// interpreted propagation (agenda + visited bookkeeping + per-assignment
// fan-out) versus a topologically-sorted compiled sweep, on functional
// chains and fan-in trees.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/core.h"

using namespace stemcp::core;

namespace {

struct ChainNet {
  PropagationContext ctx;
  std::vector<std::unique_ptr<Variable>> vars;
  std::vector<FunctionalConstraint*> constraints;

  explicit ChainNet(int n) {
    for (int i = 0; i <= n; ++i) {
      vars.push_back(
          std::make_unique<Variable>(ctx, "c", "v" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      auto& add = ctx.make<UniAdditionConstraint>(1.0);
      add.set_result(*vars[static_cast<std::size_t>(i) + 1]);
      add.basic_add_argument(*vars[static_cast<std::size_t>(i)]);
      constraints.push_back(&add);
    }
  }
};

}  // namespace

static void BM_InterpretedChain(benchmark::State& state) {
  ChainNet net(static_cast<int>(state.range(0)));
  double next = 1.0;
  for (auto _ : state) {
    net.vars[0]->set_user(Value(next));
    next += 1.0;
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InterpretedChain)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

static void BM_CompiledChain(benchmark::State& state) {
  ChainNet net(static_cast<int>(state.range(0)));
  auto compiled = CompiledNetwork::compile(net.ctx, net.constraints);
  double next = 1.0;
  for (auto _ : state) {
    net.ctx.set_enabled(false);
    net.vars[0]->set_user(Value(next));
    net.ctx.set_enabled(true);
    benchmark::DoNotOptimize(compiled->evaluate());
    next += 1.0;
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompiledChain)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

// One-time compilation cost (the trade-off the thesis weighs against
// run-time efficiency).
static void BM_CompilationCost(benchmark::State& state) {
  ChainNet net(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CompiledNetwork::compile(net.ctx, net.constraints));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompilationCost)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

#include "bench_support.h"
STEMCP_BENCH_MAIN();
