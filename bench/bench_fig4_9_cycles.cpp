// E4.9 — Fig 4.9: cyclic constraint networks.  Measures the cost of
// detecting an unsatisfiable cycle (one-value-change rule) and restoring the
// network, versus propagating a satisfiable cycle, as the ring grows.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/core.h"

using namespace stemcp::core;

namespace {

struct Ring {
  PropagationContext ctx;
  std::vector<std::unique_ptr<Variable>> vars;

  explicit Ring(int n, double offset) {
    vars.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vars.push_back(
          std::make_unique<Variable>(ctx, "ring", "v" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      auto& c = ctx.make<UniAdditionConstraint>(offset);
      c.set_result(*vars[(i + 1) % static_cast<std::size_t>(n)]);
      c.basic_add_argument(*vars[static_cast<std::size_t>(i)]);
    }
  }
};

}  // namespace

// Unsatisfiable ring (+1 around the loop): every set triggers detection at
// the full circumference, a violation, and a full restore.
static void BM_UnsatisfiableRing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Ring ring(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.vars[0]->set_user(Value(0.0)));
  }
  state.counters["restores/op"] =
      benchmark::Counter(static_cast<double>(ring.ctx.stats().restores),
                         benchmark::Counter::kAvgIterations);
  state.SetComplexityN(n);
}
BENCHMARK(BM_UnsatisfiableRing)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

// Satisfiable ring (+0): the value circulates once and terminates quietly.
static void BM_SatisfiableRing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Ring ring(n, 0.0);
  double next = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.vars[0]->set_user(Value(next)));
    next += 1.0;
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SatisfiableRing)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

#include "bench_support.h"
STEMCP_BENCH_MAIN();
