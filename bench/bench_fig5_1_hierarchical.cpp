// E5.1 — Fig 5.1/9.1: hierarchical constraint networks avoid redundant
// propagation.
//
// A cell's internal network (a functional chain of length M) feeds one
// class-level characteristic used by N instances.  Hierarchically, a change
// at the head propagates the internal chain ONCE and then crosses the
// implicit links to the N instances: cost ~ M + N.  Flattened — as a system
// without class/instance abstraction would represent it — the internal
// chain is replicated per instance: cost ~ N * M.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/core.h"
#include "stem/hierarchy.h"

using namespace stemcp;
using core::PropagationContext;
using core::UniAdditionConstraint;
using core::Value;
using core::Variable;

namespace {

/// Instance-side dual that mirrors the class value (the generic behaviour
/// of property duals).
class MirrorInstanceVar : public env::InstanceVar {
 public:
  using env::InstanceVar::InstanceVar;

  core::Status immediate_inference_by_changing(Variable& changed) override {
    if (&changed != class_dual() || changed.value().is_nil()) {
      return core::Status::ok();
    }
    return set_from_constraint(
        changed.value(), *class_dual(),
        core::Justification::propagated(
            *class_dual(), core::DependencyRecord::single(*class_dual())));
  }
};

void build_chain(PropagationContext& ctx,
                 std::vector<std::unique_ptr<Variable>>& vars, Variable& head,
                 Variable& tail, int length, const std::string& tag) {
  Variable* prev = &head;
  for (int i = 0; i < length; ++i) {
    Variable* next;
    if (i + 1 == length) {
      next = &tail;
    } else {
      vars.push_back(std::make_unique<Variable>(
          ctx, tag, "x" + std::to_string(i)));
      next = vars.back().get();
    }
    auto& add = ctx.make<UniAdditionConstraint>(1.0);
    add.set_result(*next);
    add.basic_add_argument(*prev);
    prev = next;
  }
}

}  // namespace

// Hierarchical: one internal chain, N implicit duals, N external consumers.
static void BM_Hierarchical(benchmark::State& state) {
  const int instances = static_cast<int>(state.range(0));
  const int internal = static_cast<int>(state.range(1));
  PropagationContext ctx;
  Variable head(ctx, "CELL", "head");
  env::ClassVar characteristic(ctx, "CELL", "delay");
  std::vector<std::unique_ptr<Variable>> chain_vars;
  build_chain(ctx, chain_vars, head, characteristic, internal, "CELL");

  std::vector<std::unique_ptr<MirrorInstanceVar>> duals;
  std::vector<std::unique_ptr<Variable>> external;
  for (int i = 0; i < instances; ++i) {
    duals.push_back(std::make_unique<MirrorInstanceVar>(
        ctx, "top/i" + std::to_string(i), "delay", &characteristic));
    // Each instance feeds one external consumer (its context network).
    external.push_back(std::make_unique<Variable>(
        ctx, "top/i" + std::to_string(i), "pathDelay"));
    auto& add = ctx.make<UniAdditionConstraint>(5.0);
    add.set_result(*external.back());
    add.basic_add_argument(*duals.back());
  }

  double next = 1.0;
  for (auto _ : state) {
    head.set_user(Value(next));
    next += 1.0;
  }
  state.counters["assignments/op"] =
      benchmark::Counter(static_cast<double>(ctx.stats().assignments),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Hierarchical)
    ->ArgsProduct({{1, 4, 16, 64}, {64}})
    ->ArgsProduct({{16}, {16, 64, 256}});

// Flat: the internal chain replicated once per instance (no abstraction).
static void BM_Flat(benchmark::State& state) {
  const int instances = static_cast<int>(state.range(0));
  const int internal = static_cast<int>(state.range(1));
  PropagationContext ctx;
  Variable head(ctx, "FLAT", "head");
  auto& fan = ctx.make<core::EqualityConstraint>();
  fan.basic_add_argument(head);

  std::vector<std::unique_ptr<Variable>> storage;
  for (int i = 0; i < instances; ++i) {
    const std::string tag = "flat/i" + std::to_string(i);
    storage.push_back(std::make_unique<Variable>(ctx, tag, "head"));
    Variable& local_head = *storage.back();
    fan.basic_add_argument(local_head);
    storage.push_back(std::make_unique<Variable>(ctx, tag, "delay"));
    Variable& local_tail = *storage.back();
    std::vector<std::unique_ptr<Variable>> chain_vars;
    build_chain(ctx, chain_vars, local_head, local_tail, internal, tag);
    for (auto& v : chain_vars) storage.push_back(std::move(v));
    storage.push_back(std::make_unique<Variable>(ctx, tag, "pathDelay"));
    auto& add = ctx.make<UniAdditionConstraint>(5.0);
    add.set_result(*storage.back());
    add.basic_add_argument(local_tail);
  }

  double next = 1.0;
  for (auto _ : state) {
    head.set_user(Value(next));
    next += 1.0;
  }
  state.counters["assignments/op"] =
      benchmark::Counter(static_cast<double>(ctx.stats().assignments),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Flat)
    ->ArgsProduct({{1, 4, 16, 64}, {64}})
    ->ArgsProduct({{16}, {16, 64, 256}});

#include "bench_support.h"
STEMCP_BENCH_MAIN();
