// E4.5 — Fig 4.5: propagation through a simple equality + maximum network,
// plus a chain-length sweep showing propagation cost is linear in the
// affected region (data-directed, incremental computation — thesis §1.3).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_support.h"
#include "core/core.h"

using namespace stemcp::core;

// The exact Fig 4.5 network: V1 == V2, V4 = max(V2, V3); toggle V1.
// With STEMCP_TRACE=<file> the run is traced and exported as a Chrome
// trace-event JSON (open in chrome://tracing or Perfetto).
static void BM_Fig4_5_Network(benchmark::State& state) {
  PropagationContext ctx;
  stemcp::benchsupport::maybe_enable_tracing(ctx);
  Variable v1(ctx, "f", "V1"), v2(ctx, "f", "V2"), v3(ctx, "f", "V3"),
      v4(ctx, "f", "V4");
  v3.set_user(Value(7));
  v1.set_user(Value(5));
  EqualityConstraint::among(ctx, {&v1, &v2});
  UniMaximumConstraint::max_of(ctx, v4, {&v2, &v3});
  std::int64_t next = 9;
  for (auto _ : state) {
    v1.set_user(Value(next));
    next = next == 9 ? 10 : 9;
    benchmark::DoNotOptimize(v4.value());
  }
  state.counters["assignments/op"] =
      benchmark::Counter(static_cast<double>(ctx.stats().assignments),
                         benchmark::Counter::kAvgIterations);
  stemcp::benchsupport::maybe_export_trace(ctx);
}
BENCHMARK(BM_Fig4_5_Network);

// Equality chain of length N: cost of one end-to-end propagation.
static void BM_EqualityChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PropagationContext ctx;
  std::vector<std::unique_ptr<Variable>> vars;
  vars.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    vars.push_back(
        std::make_unique<Variable>(ctx, "chain", "v" + std::to_string(i)));
  }
  for (int i = 0; i + 1 < n; ++i) {
    EqualityConstraint::among(ctx, {vars[i].get(), vars[i + 1].get()});
  }
  std::int64_t next = 1;
  for (auto _ : state) {
    vars[0]->set_user(Value(next++));
    benchmark::DoNotOptimize(vars.back()->value());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EqualityChain)->RangeMultiplier(4)->Range(4, 4096)->Complexity();

// Incremental property: a change near the sink touches only the affected
// part of the network regardless of total size.
static void BM_EqualityChainLocalChange(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PropagationContext ctx;
  std::vector<std::unique_ptr<Variable>> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(
        std::make_unique<Variable>(ctx, "chain", "v" + std::to_string(i)));
  }
  for (int i = 0; i + 1 < n; ++i) {
    EqualityConstraint::among(ctx, {vars[i].get(), vars[i + 1].get()});
  }
  vars[0]->set_user(Value(0));
  for (auto _ : state) {
    // Re-asserting an agreeing value: the wavefront dies after one hop
    // (termination criterion §4.2.2), so cost is O(1) in the chain length.
    vars[n - 1]->set_user(Value(0));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EqualityChainLocalChange)
    ->RangeMultiplier(8)
    ->Range(8, 4096)
    ->Complexity(benchmark::o1);

// Fan-out: one source driving N leaves through one equality constraint.
static void BM_EqualityFanout(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PropagationContext ctx;
  Variable src(ctx, "f", "src");
  std::vector<std::unique_ptr<Variable>> leaves;
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(src);
  for (int i = 0; i < n; ++i) {
    leaves.push_back(
        std::make_unique<Variable>(ctx, "f", "leaf" + std::to_string(i)));
    eq.basic_add_argument(*leaves.back());
  }
  std::int64_t next = 1;
  for (auto _ : state) {
    src.set_user(Value(next++));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EqualityFanout)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

#include "bench_support.h"
STEMCP_BENCH_MAIN();
