// Design-service throughput: requests/second against the worker pool as the
// number of concurrent sessions grows.  Each iteration drives one batched
// assignment per session (the service's hot path: lock session, one
// propagation wave, unlock), so the benchmark measures how well independent
// sessions scale across the pool.
#include <future>
#include <string>
#include <vector>

#include "bench_support.h"
#include "service/design_service.h"

namespace {

using namespace stemcp;
using service::Assignment;
using service::DesignService;
using service::Request;
using service::RequestType;

constexpr double kNs = 1e-9;

const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 1
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

Request make(RequestType t, const std::string& session, std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

/// requests/sec over N sessions, every session's batch in flight at once.
void BM_BatchAssignThroughput(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  DesignService svc(4, benchsupport::env_shards(1));
  std::vector<std::string> names;
  for (int i = 0; i < sessions; ++i) {
    names.push_back("s" + std::to_string(i));
    svc.call(make(RequestType::kOpen, names.back()));
    svc.call(make(RequestType::kLoad, names.back(), kPipeline));
  }

  double d = 1 * kNs;
  std::vector<std::future<service::Response>> inflight;
  inflight.reserve(names.size());
  for (auto _ : state) {
    d += kNs;  // new value every wave (one-value-change rule)
    for (const auto& name : names) {
      Request r = make(RequestType::kBatchAssign, name);
      r.assignments.push_back({"PIPE/s0.delay(in->out)", d});
      r.assignments.push_back({"PIPE/s1.delay(in->out)", d});
      inflight.push_back(svc.submit(std::move(r)));
    }
    for (auto& f : inflight) benchmark::DoNotOptimize(f.get().ok);
    inflight.clear();
  }
  state.SetItemsProcessed(state.iterations() * sessions);
  state.counters["sessions"] = sessions;
  state.counters["shards"] = static_cast<double>(svc.shard_count());
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * sessions),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchAssignThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Mixed traffic: assign + query + save per session per iteration.
void BM_MixedTrafficThroughput(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  DesignService svc(4, benchsupport::env_shards(1));
  std::vector<std::string> names;
  for (int i = 0; i < sessions; ++i) {
    names.push_back("s" + std::to_string(i));
    svc.call(make(RequestType::kOpen, names.back()));
    svc.call(make(RequestType::kLoad, names.back(), kPipeline));
  }
  double d = 1 * kNs;
  std::vector<std::future<service::Response>> inflight;
  for (auto _ : state) {
    d += kNs;
    for (const auto& name : names) {
      Request a = make(RequestType::kAssign, name);
      a.assignments.push_back({"PIPE/s0.delay(in->out)", d});
      inflight.push_back(svc.submit(std::move(a)));
      inflight.push_back(
          svc.submit(make(RequestType::kQuery, name, "PIPE.delay(in->out)")));
      inflight.push_back(svc.submit(make(RequestType::kSave, name)));
    }
    for (auto& f : inflight) benchmark::DoNotOptimize(f.get().ok);
    inflight.clear();
  }
  state.SetItemsProcessed(state.iterations() * sessions * 3);
  state.counters["sessions"] = sessions;
  state.counters["shards"] = static_cast<double>(svc.shard_count());
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * sessions * 3),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MixedTrafficThroughput)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

STEMCP_BENCH_MAIN()
