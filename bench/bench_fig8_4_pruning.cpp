// E8.4 — Figs 8.2-8.4: generate-and-test ablation — tree pruning via
// generic cells versus exhaustive leaf testing, sweeping the class-tree
// shape.  The thesis's claim: failing a generic's ideal characteristics
// rules out its whole subtree.
#include <benchmark/benchmark.h>

#include "stem/stem.h"

using namespace stemcp;
using core::BoundConstraint;
using core::Rect;
using core::Value;
using env::SignalDirection;

namespace {
constexpr double kNs = 1e-9;

/// A generic root with `families` generic subtrees of `leaves` leaves each.
/// Only the last family's subtree can meet the delay budget.
struct Tree {
  env::Library lib;
  env::CellClass* root;
  env::CellInstance* slot;

  Tree(int families, int leaves) {
    root = &lib.define_cell("GEN");
    root->set_generic(true);
    root->declare_signal("in", SignalDirection::kInput);
    root->declare_signal("out", SignalDirection::kOutput);
    root->declare_delay("in", "out");
    for (int f = 0; f < families; ++f) {
      auto& fam = lib.define_cell("FAM" + std::to_string(f), root);
      fam.set_generic(true);
      const bool feasible = f + 1 == families;
      // Ideal (best-case) characteristics on the generic (thesis Fig 8.4).
      const double best = feasible ? 5 * kNs : 50 * kNs;
      fam.set_leaf_delay("in", "out", best);
      fam.bounding_box().set_user(Value(Rect{0, 0, 8, 8}));
      for (int l = 0; l < leaves; ++l) {
        auto& leaf = lib.define_cell(
            "FAM" + std::to_string(f) + ".L" + std::to_string(l), &fam);
        leaf.set_leaf_delay("in", "out", best + l * kNs);
        leaf.bounding_box().set_user(Value(Rect{0, 0, 8, 8 + l}));
      }
    }
    auto& top = lib.define_cell("TOP");
    top.declare_signal("in", SignalDirection::kInput);
    top.declare_signal("out", SignalDirection::kOutput);
    auto& d = top.declare_delay("in", "out");
    slot = &top.add_subcell(*root, "u");
    auto& n1 = top.add_net("n1");
    n1.connect_io("in");
    n1.connect(*slot, "in");
    auto& n2 = top.add_net("n2");
    n2.connect(*slot, "out");
    n2.connect_io("out");
    top.build_delay_networks();
    slot->bounding_box().set_user(Value(Rect{0, 0, 64, 64}));
    BoundConstraint::upper(lib.context(), d, Value(10 * kNs));
  }
};

}  // namespace

static void BM_Pruned(benchmark::State& state) {
  Tree t(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.root->valid_realizations_for(*t.slot, {}));
  }
  state.counters["tests/op"] = benchmark::Counter(
      static_cast<double>(t.lib.selection_stats().candidates_tested),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Pruned)
    ->ArgsProduct({{2, 8, 32}, {8}})
    ->ArgsProduct({{8}, {2, 32}});

static void BM_Unpruned(benchmark::State& state) {
  Tree t(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        t.root->valid_realizations_unpruned(*t.slot, {}));
  }
  state.counters["tests/op"] = benchmark::Counter(
      static_cast<double>(t.lib.selection_stats().candidates_tested),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Unpruned)
    ->ArgsProduct({{2, 8, 32}, {8}})
    ->ArgsProduct({{8}, {2, 32}});

#include "bench_support.h"
STEMCP_BENCH_MAIN();
