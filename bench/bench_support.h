// Shared benchmark harness glue.
//
// Every bench binary uses STEMCP_BENCH_MAIN() instead of BENCHMARK_MAIN():
// after the timing run it writes the process-global metrics registry —
// which every PropagationContext folds its lifetime counters into on
// destruction — as machine-readable JSON next to the Google-Benchmark
// output, so BENCH_*.json trajectories stay comparable across PRs.
//
//   STEMCP_BENCH_STATS=<path>  stats JSON destination
//                              (default: <exe-basename>.stats.json in cwd)
//   STEMCP_BENCH_STATS=-       suppress the stats file
//   STEMCP_TRACE=<path>        benches that call maybe_enable_tracing()
//                              record a Chrome trace-event file there
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/core.h"

namespace stemcp::benchsupport {

inline const char* trace_path() { return std::getenv("STEMCP_TRACE"); }

/// Turn on structured tracing (+ metrics) for this context when the run was
/// started with STEMCP_TRACE=<file>.
inline void maybe_enable_tracing(core::PropagationContext& ctx) {
  if (trace_path() != nullptr) {
    ctx.tracer().set_enabled(true);
    ctx.metrics().set_enabled(true);
  }
}

/// Export the context's ring buffer as Chrome trace-event JSON to the
/// STEMCP_TRACE path.  Call after the measurement loop; the last caller in
/// the binary wins.
inline void maybe_export_trace(core::PropagationContext& ctx) {
  if (const char* path = trace_path()) {
    if (!core::export_chrome_trace(ctx.tracer(), path)) {
      std::cerr << "bench_support: failed to write trace to " << path << '\n';
    }
  }
}

inline std::string stats_json_path(const char* argv0) {
  if (const char* p = std::getenv("STEMCP_BENCH_STATS")) return p;
  std::string exe = (argv0 != nullptr && *argv0) ? argv0 : "bench";
  const auto slash = exe.find_last_of('/');
  if (slash != std::string::npos) exe = exe.substr(slash + 1);
  return exe + ".stats.json";
}

inline int bench_main(int argc, char** argv) {
  const std::string stats_path =
      stats_json_path(argc > 0 ? argv[0] : nullptr);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (stats_path != "-") {
    std::ofstream out(stats_path, std::ios::out | std::ios::trunc);
    out << core::global_metrics_json() << '\n';
    if (!out.good()) {
      std::cerr << "bench_support: failed to write " << stats_path << '\n';
      return 1;
    }
  }
  return 0;
}

}  // namespace stemcp::benchsupport

#define STEMCP_BENCH_MAIN()                        \
  int main(int argc, char** argv) {                \
    return stemcp::benchsupport::bench_main(argc, argv); \
  }
