// Shared benchmark harness glue.
//
// Every bench binary uses STEMCP_BENCH_MAIN() instead of BENCHMARK_MAIN():
// the run goes through a collecting console reporter, and afterwards the
// binary writes ONE consolidated JSON document combining
//   - per-benchmark timings (name, iterations, ns/iter real + cpu, user
//     counters such as items_per_second), and
//   - the process-global metrics registry, which every PropagationContext
//     folds its lifetime engine Stats into on destruction,
// so a single file per binary captures both wall time and engine work.
// tools/bench_compare.py diffs two such files (or directories of them) and
// flags regressions; `tools/bench_compare.py merge` concatenates several
// into one BENCH.json.
//
//   STEMCP_BENCH_STATS=<path>  consolidated JSON destination
//                              (default: <exe-basename>.stats.json in cwd)
//   STEMCP_BENCH_STATS=-       suppress the stats file
//   STEMCP_TRACE=<path>        benches that call maybe_enable_tracing()
//                              record a Chrome trace-event file there
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/core.h"

namespace stemcp::benchsupport {

inline const char* trace_path() { return std::getenv("STEMCP_TRACE"); }

/// Turn on structured tracing (+ metrics) for this context when the run was
/// started with STEMCP_TRACE=<file>.
inline void maybe_enable_tracing(core::PropagationContext& ctx) {
  if (trace_path() != nullptr) {
    ctx.tracer().set_enabled(true);
    ctx.metrics().set_enabled(true);
  }
}

/// Export the context's ring buffer as Chrome trace-event JSON to the
/// STEMCP_TRACE path.  Call after the measurement loop; the last caller in
/// the binary wins.
inline void maybe_export_trace(core::PropagationContext& ctx) {
  if (const char* path = trace_path()) {
    if (!core::export_chrome_trace(ctx.tracer(), path)) {
      std::cerr << "bench_support: failed to write trace to " << path << '\n';
    }
  }
}

/// Attach a histogram's percentile spread to the benchmark as user counters
/// ("<prefix>_p50" ... "<prefix>_max", plus "<prefix>_count"), so latency
/// distributions land in the consolidated JSON and bench_compare.py diffs
/// them like any other number.
inline void counters_from_histogram(benchmark::State& state,
                                    const std::string& prefix,
                                    const core::Histogram& h) {
  if (h.count() == 0) return;
  state.counters[prefix + "_count"] = static_cast<double>(h.count());
  // The mean is the one number here NOT quantized to a log2 bucket bound —
  // flatness assertions (bench_compare.py gate --flat) use it because a
  // percentile sitting on a bucket edge flips between 2^i-1 and 2^(i+1)-1.
  state.counters[prefix + "_mean"] =
      static_cast<double>(h.sum()) / static_cast<double>(h.count());
  state.counters[prefix + "_p50"] = static_cast<double>(h.percentile(50.0));
  state.counters[prefix + "_p90"] = static_cast<double>(h.percentile(90.0));
  state.counters[prefix + "_p99"] = static_cast<double>(h.percentile(99.0));
  state.counters[prefix + "_p999"] = static_cast<double>(h.percentile(99.9));
  state.counters[prefix + "_max"] = static_cast<double>(h.max());
}

/// Shard-count knob for service benches: STEMCP_SHARDS=<n> overrides the
/// bench's default shard count (unset or 0 keeps `fallback`).  The latency
/// bench sweeps explicit shard arms instead; this knob is for one-shot runs
/// of the throughput benches at a chosen shard count.
inline std::size_t env_shards(std::size_t fallback) {
  if (const char* s = std::getenv("STEMCP_SHARDS")) {
    const long n = std::strtol(s, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

inline std::string stats_json_path(const char* argv0) {
  if (const char* p = std::getenv("STEMCP_BENCH_STATS")) return p;
  std::string exe = (argv0 != nullptr && *argv0) ? argv0 : "bench";
  const auto slash = exe.find_last_of('/');
  if (slash != std::string::npos) exe = exe.substr(slash + 1);
  return exe + ".stats.json";
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One measured benchmark repetition, normalized to ns/iteration.
struct BenchResult {
  std::string name;
  std::int64_t iterations = 0;
  double real_time_ns_per_iter = 0;
  double cpu_time_ns_per_iter = 0;
  std::vector<std::pair<std::string, double>> counters;
};

/// Console reporter that additionally collects every non-aggregate run so
/// bench_main can serialize them alongside the engine metrics.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      if (run.error_occurred) continue;
      BenchResult r;
      r.name = run.benchmark_name();
      r.iterations = static_cast<std::int64_t>(run.iterations);
      const double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
      r.real_time_ns_per_iter = run.real_accumulated_time * 1e9 / iters;
      r.cpu_time_ns_per_iter = run.cpu_accumulated_time * 1e9 / iters;
      for (const auto& [cname, counter] : run.counters) {
        r.counters.emplace_back(cname, static_cast<double>(counter.value));
      }
      results_.push_back(std::move(r));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchResult>& results() const { return results_; }

 private:
  std::vector<BenchResult> results_;
};

/// The consolidated per-binary document: benchmark timings + the global
/// metrics registry (engine Stats folded in by every context destructor).
inline std::string consolidated_json(const std::string& bench_name,
                                     const std::vector<BenchResult>& results) {
  std::ostringstream out;
  out << "{\"bench\":\"" << json_escape(bench_name) << "\",\"benchmarks\":[";
  bool first = true;
  for (const BenchResult& r : results) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(r.name) << "\""
        << ",\"iterations\":" << r.iterations
        << ",\"real_time_ns_per_iter\":" << r.real_time_ns_per_iter
        << ",\"cpu_time_ns_per_iter\":" << r.cpu_time_ns_per_iter;
    if (!r.counters.empty()) {
      out << ",\"counters\":{";
      bool cfirst = true;
      for (const auto& [cname, v] : r.counters) {
        if (!cfirst) out << ',';
        cfirst = false;
        out << '"' << json_escape(cname) << "\":" << v;
      }
      out << '}';
    }
    out << '}';
  }
  out << "],\"metrics\":" << core::global_metrics_json() << '}';
  return out.str();
}

inline int bench_main(int argc, char** argv) {
  const std::string stats_path =
      stats_json_path(argc > 0 ? argv[0] : nullptr);
  std::string exe = (argc > 0 && argv[0] != nullptr) ? argv[0] : "bench";
  if (const auto slash = exe.find_last_of('/'); slash != std::string::npos) {
    exe = exe.substr(slash + 1);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (stats_path != "-") {
    std::ofstream out(stats_path, std::ios::out | std::ios::trunc);
    out << consolidated_json(exe, reporter.results()) << '\n';
    if (!out.good()) {
      std::cerr << "bench_support: failed to write " << stats_path << '\n';
      return 1;
    }
  }
  return 0;
}

}  // namespace stemcp::benchsupport

#define STEMCP_BENCH_MAIN()                        \
  int main(int argc, char** argv) {                \
    return stemcp::benchsupport::bench_main(argc, argv); \
  }
