// E7.2/7.3 — incremental signal typing (thesis §7.1): cost of wiring
// signals with implied typing constraints and of type inference across a
// bus, versus net fan-out.
#include <benchmark/benchmark.h>

#include "stem/stem.h"

using namespace stemcp;
using core::Value;
using env::SignalDirection;

// Connecting N receivers to a typed driver: each connect instantiates the
// typing constraints and re-propagates.
static void BM_ConnectTypedBus(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    env::Library lib;
    auto& src = lib.define_cell("SRC");
    src.declare_signal("q", SignalDirection::kOutput);
    src.signal("q").bit_width().set_user(Value(16));
    src.signal("q").data_type().set_user(
        env::type_value(lib.types().at("IntegerSignal")));
    auto& dst = lib.define_cell("DST");
    dst.declare_signal("d", SignalDirection::kInput);
    auto& top = lib.define_cell("TOP");
    auto& net = top.add_net("bus");
    auto& s = top.add_subcell(src, "s");
    std::vector<env::CellInstance*> sinks;
    for (int i = 0; i < n; ++i) {
      sinks.push_back(&top.add_subcell(dst, "d" + std::to_string(i)));
    }
    state.ResumeTiming();

    benchmark::DoNotOptimize(net.connect(s, "q"));
    for (env::CellInstance* sink : sinks) {
      benchmark::DoNotOptimize(net.connect(*sink, "d"));
    }
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ConnectTypedBus)->RangeMultiplier(4)->Range(4, 256);

// Late type refinement: the net type tightens after N instances (of N
// distinct classes) are connected; the refinement floods every class var.
static void BM_LateTypeRefinement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  env::Library lib;
  auto& top = lib.define_cell("TOP");
  auto& net = top.add_net("bus");
  for (int i = 0; i < n; ++i) {
    auto& c = lib.define_cell("C" + std::to_string(i));
    c.declare_signal("p", SignalDirection::kInOut);
    auto& inst = top.add_subcell(c, "i" + std::to_string(i));
    net.connect(inst, "p");
  }
  const auto integer = env::type_value(lib.types().at("IntegerSignal"));
  const auto bcd = env::type_value(lib.types().at("BCDSignal"));
  bool flip = false;
  for (auto _ : state) {
    // Alternate between erasing and refining so each iteration flows types.
    state.PauseTiming();
    lib.context().set_enabled(false);
    net.data_type().set(core::Value::nil(), core::Justification::user());
    for (const auto& cell : lib.cells()) {
      if (cell->find_signal("p") != nullptr) {
        cell->signal("p").data_type().set(core::Value::nil(),
                                          core::Justification::user());
      }
    }
    lib.context().set_enabled(true);
    state.ResumeTiming();
    benchmark::DoNotOptimize(net.data_type().set_user(flip ? integer : bcd));
    flip = !flip;
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LateTypeRefinement)->RangeMultiplier(4)->Range(4, 256);

// Incremental width checking: flipping the driver's class width floods N
// instance duals + the net equality.
static void BM_WidthRipple(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  env::Library lib;
  auto& c = lib.define_cell("C");
  c.declare_signal("p", SignalDirection::kInOut);
  auto& top = lib.define_cell("TOP");
  // Each instance on its own net so width changes fan out through N nets.
  for (int i = 0; i < n; ++i) {
    auto& inst = top.add_subcell(c, "i" + std::to_string(i));
    top.add_net("n" + std::to_string(i)).connect(inst, "p");
  }
  std::int64_t w = 8;
  for (auto _ : state) {
    c.signal("p").bit_width().set_user(Value(w));
    w = w == 8 ? 16 : 8;
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_WidthRipple)->RangeMultiplier(4)->Range(4, 256)->Complexity();

#include "bench_support.h"
STEMCP_BENCH_MAIN();
