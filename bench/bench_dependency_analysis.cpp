// E4.11/4.12 — dependency analysis: antecedent and consequence traces over
// propagation chains (thesis §4.2.4).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/core.h"

using namespace stemcp::core;

namespace {

struct Chain {
  PropagationContext ctx;
  std::vector<std::unique_ptr<Variable>> vars;

  explicit Chain(int n) {
    for (int i = 0; i < n; ++i) {
      vars.push_back(
          std::make_unique<Variable>(ctx, "c", "v" + std::to_string(i)));
    }
    for (int i = 0; i + 1 < n; ++i) {
      auto& add = ctx.make<UniAdditionConstraint>(1.0);
      add.set_result(*vars[static_cast<std::size_t>(i) + 1]);
      add.basic_add_argument(*vars[static_cast<std::size_t>(i)]);
    }
    vars[0]->set_user(Value(0.0));
  }
};

}  // namespace

static void BM_Antecedents(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Chain chain(n);
  for (auto _ : state) {
    DependencyTrace t = chain.vars.back()->antecedents();
    benchmark::DoNotOptimize(t.variables.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Antecedents)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

static void BM_Consequences(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Chain chain(n);
  for (auto _ : state) {
    DependencyTrace t = chain.vars.front()->consequences();
    benchmark::DoNotOptimize(t.variables.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Consequences)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

// The thesis's justification for dependency records: efficient erasure when
// constraints are removed (§4.2.4).  Remove + re-add the middle constraint.
static void BM_RemovalErasure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PropagationContext ctx;
  std::vector<std::unique_ptr<Variable>> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(
        std::make_unique<Variable>(ctx, "c", "v" + std::to_string(i)));
  }
  std::vector<UniAdditionConstraint*> adds;
  for (int i = 0; i + 1 < n; ++i) {
    auto& add = ctx.make<UniAdditionConstraint>(1.0);
    add.set_result(*vars[static_cast<std::size_t>(i) + 1]);
    add.basic_add_argument(*vars[static_cast<std::size_t>(i)]);
    adds.push_back(&add);
  }
  vars[0]->set_user(Value(0.0));
  UniAdditionConstraint* mid = adds[adds.size() / 2];
  Variable* mid_in = mid->arguments()[1];  // the input argument
  for (auto _ : state) {
    // Remove the input: everything downstream is erased by dependency
    // analysis; re-adding re-propagates the chain back to life.
    mid->remove_argument(*mid_in);
    mid->add_argument(*mid_in);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RemovalErasure)->RangeMultiplier(4)->Range(4, 256)->Complexity();

#include "bench_support.h"
STEMCP_BENCH_MAIN();
