// Durability-layer cost: requests/second through one session with the
// operation journal off versus attached under each fsync policy.  The
// journal-off arm is the PR-3 hot path and must not regress; the journaled
// arms price the durability spectrum (none < interval < group-commit <
// every-record) so operators can pick a policy with eyes open.
//
// BM_JournalSaturation is the group-commit acceptance matrix: req/s as a
// function of flush policy x concurrent arrival depth.  At depth 1 group
// commit degenerates to every-record (one record per fsync); at saturating
// depth the flusher coalesces the whole in-flight window into one fsync and
// throughput must multiply — run_tier1.sh --bench gates >= 5x at depth 64.
// Two final benchmarks time recovery replay, single-file and segmented.
#include <sys/stat.h>

#include <cstdio>
#include <deque>
#include <future>
#include <string>

#include "bench_support.h"
#include "persist/journal.h"
#include "service/design_service.h"

namespace {

using namespace stemcp;
using service::DesignService;
using service::Request;
using service::RequestType;

constexpr double kNs = 1e-9;

const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 1
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

Request make(RequestType t, const std::string& session, std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

std::string bench_base(const char* tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::string base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  if (base.back() != '/') base.push_back('/');
  // Dedicated directory: journal opens and segment scans readdir the
  // parent, so sharing /tmp would bill its unrelated entries (hundreds of
  // stale test files on a CI host) to the recovery numbers.
  base += "stemcp_bench_persistence.d";
  ::mkdir(base.c_str(), 0755);
  return base + "/" + tag;
}

void remove_base(const std::string& base) {
  std::remove((base + ".ckpt").c_str());
  const std::string jpath = base + ".journal";
  for (const std::uint64_t n : stemcp::persist::list_journal_segments(jpath)) {
    std::remove(stemcp::persist::journal_segment_path(jpath, n).c_str());
  }
  std::remove(jpath.c_str());
}

// state.range(0): 0 = journal off, 1 = fsync none, 2 = fsync interval,
// 3 = fsync every-record, 4 = fsync group-commit.
const char* kPolicyArg[] = {"off", "none", "interval 32", "every-record",
                            "group-commit"};
const char* kPolicyTag[] = {"off", "none", "interval", "every", "group"};

void BM_JournaledAssign(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const std::string base = bench_base(kPolicyTag[mode]);
  remove_base(base);
  DesignService svc(1);
  svc.call(make(RequestType::kOpen, "b"));
  svc.call(make(RequestType::kLoad, "b", kPipeline));
  if (mode != 0) {
    service::Response r = svc.call(make(
        RequestType::kJournal, "b", base + " " + kPolicyArg[mode]));
    if (!r.ok) {
      state.SkipWithError(("journal attach failed: " + r.error).c_str());
      return;
    }
  }
  double d = 1 * kNs;
  for (auto _ : state) {
    d += kNs;  // new value every wave (one-value-change rule)
    Request r = make(RequestType::kAssign, "b");
    r.assignments.push_back({"PIPE/s0.delay(in->out)", d});
    benchmark::DoNotOptimize(svc.call(std::move(r)).ok);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  svc.call(make(RequestType::kClose, "b"));
  remove_base(base);
}
BENCHMARK(BM_JournaledAssign)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

/// The group-commit saturation matrix.  range(0): 0 = every-record,
/// 1 = group-commit.  range(1): arrival depth — how many requests are kept
/// in flight via submit() futures.  A ticket wait parks a worker, so the
/// worker pool is sized to the largest depth and the flusher sees the whole
/// window queued at once.
void BM_JournalSaturation(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const std::size_t inflight_max =
      static_cast<std::size_t>(state.range(1));
  const std::string base = bench_base(
      (std::string("sat_") + (mode == 0 ? "every_" : "group_") +
       std::to_string(inflight_max))
          .c_str());
  remove_base(base);
  DesignService::Config cfg;
  cfg.workers_per_shard = 64;
  cfg.shards = 1;
  DesignService svc(cfg);
  svc.call(make(RequestType::kOpen, "b"));
  svc.call(make(RequestType::kLoad, "b", kPipeline));
  {
    const char* policy =
        mode == 0 ? " every-record" : " group-commit batch 64 delay-us 200";
    service::Response r =
        svc.call(make(RequestType::kJournal, "b", base + policy));
    if (!r.ok) {
      state.SkipWithError(("journal attach failed: " + r.error).c_str());
      return;
    }
  }
  double d = 1 * kNs;
  std::deque<std::future<service::Response>> window;
  for (auto _ : state) {
    d += kNs;
    Request r = make(RequestType::kAssign, "b");
    r.assignments.push_back({"PIPE/s0.delay(in->out)", d});
    window.push_back(svc.submit(std::move(r)));
    if (window.size() >= inflight_max) {
      benchmark::DoNotOptimize(window.front().get().ok);
      window.pop_front();
    }
  }
  while (!window.empty()) {
    window.front().get();
    window.pop_front();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  if (const auto s = svc.sessions().find("b")) {
    if (const stemcp::persist::Journal* j = s->journal()) {
      state.counters["fsyncs"] = static_cast<double>(j->fsyncs());
      state.counters["records"] = static_cast<double>(j->records_written());
    }
  }
  svc.call(make(RequestType::kClose, "b"));
  remove_base(base);
}
BENCHMARK(BM_JournalSaturation)
    ->Args({0, 1})
    ->Args({0, 8})
    ->Args({0, 64})
    ->Args({1, 1})
    ->Args({1, 8})
    ->Args({1, 64})
    ->UseRealTime();

/// Recovery replay throughput: rebuild a session from a checkpoint plus a
/// journal of `range(0)` assignment records.
void BM_RecoveryReplay(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  const std::string base = bench_base("replay");
  remove_base(base);
  {
    DesignService svc(1);
    svc.call(make(RequestType::kOpen, "b"));
    svc.call(make(RequestType::kJournal, "b", base + " none"));
    svc.call(make(RequestType::kLoad, "b", kPipeline));
    double d = 1 * kNs;
    for (int i = 0; i < records; ++i) {
      d += kNs;
      Request r = make(RequestType::kAssign, "b");
      r.assignments.push_back({"PIPE/s0.delay(in->out)", d});
      svc.call(std::move(r));
    }
    // No close: leave the log as a crash would.
  }
  for (auto _ : state) {
    DesignService svc(1);
    service::Response r = svc.call(make(RequestType::kRecover, "b", base));
    if (!r.ok) {
      state.SkipWithError(("recover failed: " + r.error).c_str());
      return;
    }
    benchmark::DoNotOptimize(r.text.size());
  }
  state.SetItemsProcessed(state.iterations() * records);
  state.counters["records"] = records;
  state.counters["replay_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * records),
      benchmark::Counter::kIsRate);
  remove_base(base);
}
BENCHMARK(BM_RecoveryReplay)->Arg(64)->Arg(512);

/// Segmented recovery: same replay as BM_RecoveryReplay but the log was
/// rolled into sealed 2 KiB segments, so recovery goes through the parallel
/// segment scan and its seq-continuity seam checks.
void BM_SegmentedRecoveryReplay(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  const std::string base = bench_base("seg_replay");
  remove_base(base);
  std::uint64_t segments = 0;
  {
    DesignService svc(1);
    svc.call(make(RequestType::kOpen, "b"));
    svc.call(make(RequestType::kJournal, "b", base + " none segment 2048"));
    svc.call(make(RequestType::kLoad, "b", kPipeline));
    double d = 1 * kNs;
    for (int i = 0; i < records; ++i) {
      d += kNs;
      Request r = make(RequestType::kAssign, "b");
      r.assignments.push_back({"PIPE/s0.delay(in->out)", d});
      svc.call(std::move(r));
    }
    if (const auto s = svc.sessions().find("b")) {
      segments = s->journal()->sealed_segments();
    }
    // No close: leave the log as a crash would.
  }
  for (auto _ : state) {
    DesignService svc(1);
    service::Response r = svc.call(make(RequestType::kRecover, "b", base));
    if (!r.ok) {
      state.SkipWithError(("recover failed: " + r.error).c_str());
      return;
    }
    benchmark::DoNotOptimize(r.text.size());
  }
  state.SetItemsProcessed(state.iterations() * records);
  state.counters["records"] = records;
  state.counters["segments"] = static_cast<double>(segments);
  state.counters["replay_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * records),
      benchmark::Counter::kIsRate);
  remove_base(base);
}
BENCHMARK(BM_SegmentedRecoveryReplay)->Arg(512);

}  // namespace

STEMCP_BENCH_MAIN()
