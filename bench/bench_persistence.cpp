// Durability-layer cost: requests/second through one session with the
// operation journal off versus attached under each fsync policy.  The
// journal-off arm is the PR-3 hot path and must not regress; the three
// journaled arms price the durability spectrum (none < interval <
// every-record) so operators can pick a policy with eyes open.  A final
// benchmark times recovery replay itself.
#include <cstdio>
#include <string>

#include "bench_support.h"
#include "service/design_service.h"

namespace {

using namespace stemcp;
using service::DesignService;
using service::Request;
using service::RequestType;

constexpr double kNs = 1e-9;

const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 1
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

Request make(RequestType t, const std::string& session, std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

std::string bench_base(const char* tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::string base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  if (base.back() != '/') base.push_back('/');
  return base + "stemcp_bench_persistence_" + tag;
}

void remove_base(const std::string& base) {
  std::remove((base + ".ckpt").c_str());
  std::remove((base + ".journal").c_str());
}

// state.range(0): 0 = journal off, 1 = fsync none, 2 = fsync interval,
// 3 = fsync every-record.
const char* kPolicyArg[] = {"off", "none", "interval 32", "every-record"};
const char* kPolicyTag[] = {"off", "none", "interval", "every"};

void BM_JournaledAssign(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const std::string base = bench_base(kPolicyTag[mode]);
  remove_base(base);
  DesignService svc(1);
  svc.call(make(RequestType::kOpen, "b"));
  svc.call(make(RequestType::kLoad, "b", kPipeline));
  if (mode != 0) {
    service::Response r = svc.call(make(
        RequestType::kJournal, "b", base + " " + kPolicyArg[mode]));
    if (!r.ok) {
      state.SkipWithError(("journal attach failed: " + r.error).c_str());
      return;
    }
  }
  double d = 1 * kNs;
  for (auto _ : state) {
    d += kNs;  // new value every wave (one-value-change rule)
    Request r = make(RequestType::kAssign, "b");
    r.assignments.push_back({"PIPE/s0.delay(in->out)", d});
    benchmark::DoNotOptimize(svc.call(std::move(r)).ok);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  svc.call(make(RequestType::kClose, "b"));
  remove_base(base);
}
BENCHMARK(BM_JournaledAssign)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

/// Recovery replay throughput: rebuild a session from a checkpoint plus a
/// journal of `range(0)` assignment records.
void BM_RecoveryReplay(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  const std::string base = bench_base("replay");
  remove_base(base);
  {
    DesignService svc(1);
    svc.call(make(RequestType::kOpen, "b"));
    svc.call(make(RequestType::kJournal, "b", base + " none"));
    svc.call(make(RequestType::kLoad, "b", kPipeline));
    double d = 1 * kNs;
    for (int i = 0; i < records; ++i) {
      d += kNs;
      Request r = make(RequestType::kAssign, "b");
      r.assignments.push_back({"PIPE/s0.delay(in->out)", d});
      svc.call(std::move(r));
    }
    // No close: leave the log as a crash would.
  }
  for (auto _ : state) {
    DesignService svc(1);
    service::Response r = svc.call(make(RequestType::kRecover, "b", base));
    if (!r.ok) {
      state.SkipWithError(("recover failed: " + r.error).c_str());
      return;
    }
    benchmark::DoNotOptimize(r.text.size());
  }
  state.SetItemsProcessed(state.iterations() * records);
  state.counters["records"] = records;
  state.counters["replay_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * records),
      benchmark::Counter::kIsRate);
  remove_base(base);
}
BENCHMARK(BM_RecoveryReplay)->Arg(64)->Arg(512);

}  // namespace

STEMCP_BENCH_MAIN()
