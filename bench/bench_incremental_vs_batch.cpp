// E7 — incremental vs batch design checking (thesis ch. 7): "by checking
// only those portions of the design which have changed, incremental design
// checking can achieve fast enough response times to be run concurrently
// with design editing".  We apply an edit stream to a wired design and
// compare (a) incremental checking via propagation against (b) propagation
// off + a full batch audit after every edit.
#include <benchmark/benchmark.h>

#include "stem/stem.h"

using namespace stemcp;
using core::Value;
using env::SignalDirection;

namespace {

/// A design with `cells` leaf classes, each instantiated on its own net
/// with width constraints; edits flip one signal's class width.
struct Design {
  env::Library lib;
  std::vector<env::CellClass*> leaves;

  explicit Design(int cells) {
    auto& top = lib.define_cell("TOP");
    for (int i = 0; i < cells; ++i) {
      auto& leaf = lib.define_cell("L" + std::to_string(i));
      leaf.declare_signal("p", SignalDirection::kInOut);
      leaves.push_back(&leaf);
      auto& inst = top.add_subcell(leaf, "i" + std::to_string(i));
      top.add_net("n" + std::to_string(i)).connect(inst, "p");
    }
  }
};

}  // namespace

static void BM_IncrementalChecking(benchmark::State& state) {
  Design d(static_cast<int>(state.range(0)));
  std::int64_t w = 8;
  std::size_t edit = 0;
  for (auto _ : state) {
    // One edit: the affected net re-checks during propagation; nothing else
    // is touched.
    d.leaves[edit % d.leaves.size()]->signal("p").bit_width().set_user(
        Value(w));
    ++edit;
    w = w == 8 ? 16 : 8;
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalChecking)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity(benchmark::o1);

static void BM_BatchCheckingPerEdit(benchmark::State& state) {
  Design d(static_cast<int>(state.range(0)));
  auto& top = d.lib.cell("TOP");
  d.lib.context().set_enabled(false);
  std::int64_t w = 8;
  std::size_t edit = 0;
  for (auto _ : state) {
    d.leaves[edit % d.leaves.size()]->signal("p").bit_width().set_user(
        Value(w));
    ++edit;
    w = w == 8 ? 16 : 8;
    // Batch mode: audit the whole design after the edit.
    benchmark::DoNotOptimize(env::DesignChecker::check(top));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BatchCheckingPerEdit)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

#include "bench_support.h"
STEMCP_BENCH_MAIN();
