// E9.2.3 — the thesis's complexity claim (§9.2.3):
//
//   complexity ∝ Σ_v |constraints(v)|
//
// We sweep the number of variables V and the constraints-per-variable
// density D independently; the time per full propagation should scale with
// the product V*D (the sum above), not with V or D alone.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/core.h"

using namespace stemcp::core;

namespace {

/// A lattice: V variables in a chain carrying the value (equality), plus D-1
/// additional predicate constraints attached to every variable (each must be
/// visited and checked during propagation).
struct Lattice {
  PropagationContext ctx;
  std::vector<std::unique_ptr<Variable>> vars;

  Lattice(int v, int density) {
    for (int i = 0; i < v; ++i) {
      vars.push_back(
          std::make_unique<Variable>(ctx, "l", "v" + std::to_string(i)));
    }
    for (int i = 0; i + 1 < v; ++i) {
      EqualityConstraint::among(ctx, {vars[static_cast<std::size_t>(i)].get(),
                                      vars[static_cast<std::size_t>(i) + 1]
                                          .get()});
    }
    for (auto& var : vars) {
      for (int d = 0; d + 1 < density; ++d) {
        auto& c = ctx.make<BoundConstraint>(Relation::kLessEqual,
                                            Value(1e18));
        c.basic_add_argument(*var);
      }
    }
  }
};

}  // namespace

static void BM_SumOfConstraintsOverVariables(benchmark::State& state) {
  const int v = static_cast<int>(state.range(0));
  const int density = static_cast<int>(state.range(1));
  Lattice lattice(v, density);
  std::int64_t next = 1;
  for (auto _ : state) {
    lattice.vars[0]->set_user(Value(next++));
  }
  // The quantity the thesis says drives cost.
  std::size_t sum = 0;
  for (const auto& var : lattice.vars) sum += var->constraints().size();
  state.counters["sum|constraints(v)|"] = static_cast<double>(sum);
  state.counters["activations/op"] =
      benchmark::Counter(static_cast<double>(lattice.ctx.stats().activations),
                         benchmark::Counter::kAvgIterations);
  state.SetComplexityN(static_cast<std::int64_t>(sum));
}
// Same sum reached three ways: many sparse variables, few dense variables,
// and balanced — times should cluster per sum, not per shape.
BENCHMARK(BM_SumOfConstraintsOverVariables)
    ->Args({1024, 2})    // sum ~ 3k
    ->Args({512, 4})     // sum ~ 3k
    ->Args({128, 16})    // sum ~ 2.3k
    ->Args({2048, 2})    // sum ~ 6k
    ->Args({1024, 4})    // sum ~ 6k
    ->Args({256, 16})    // sum ~ 4.6k
    ->Args({4096, 2})
    ->Args({2048, 4})
    ->Args({512, 16})
    ->Complexity();

#include "bench_support.h"
STEMCP_BENCH_MAIN();
