// E7.6-7.9 — bounding boxes: class-box edits defaulting instance
// placements, procedural invalidation up the hierarchy, and lazy
// recalculation, swept over hierarchy depth and fan-out.
#include <benchmark/benchmark.h>

#include "stem/stem.h"

using namespace stemcp;
using core::Rect;
using core::Transform;
using core::Value;

namespace {

/// A balanced hierarchy: `depth` levels, each cell containing `fanout`
/// instances of the level below.
struct Tower {
  env::Library lib;
  env::CellClass* leaf;
  env::CellClass* top;

  Tower(int depth, int fanout) {
    leaf = &lib.define_cell("L0");
    leaf->bounding_box().set_user(Value(Rect{0, 0, 10, 10}));
    env::CellClass* below = leaf;
    for (int d = 1; d <= depth; ++d) {
      auto& cell = lib.define_cell("L" + std::to_string(d));
      const core::Coord w =
          below->bounding_box().demand().as_rect().width();
      for (int i = 0; i < fanout; ++i) {
        cell.add_subcell(*below, "i" + std::to_string(i),
                         Transform::translate({w * i, 0}));
      }
      below = &cell;
    }
    top = below;
  }
};

}  // namespace

// Leaf growth: every instance placement re-defaults, every containing cell's
// class box is invalidated; then one demand() recalculates the whole tower.
static void BM_LeafGrowthRipple(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int fanout = static_cast<int>(state.range(1));
  Tower tower(depth, fanout);
  (void)tower.top->bounding_box().demand();
  core::Coord h = 12;
  for (auto _ : state) {
    tower.leaf->bounding_box().set_user(Value(Rect{0, 0, 10, h}));
    benchmark::DoNotOptimize(tower.top->bounding_box().demand());
    h = h == 12 ? 10 : 12;
  }
}
BENCHMARK(BM_LeafGrowthRipple)
    ->ArgsProduct({{1, 2, 3, 4}, {4}})
    ->ArgsProduct({{3}, {2, 8, 16}});

// Invalidation alone (the incremental editing cost, recalc deferred).
static void BM_InvalidationOnly(benchmark::State& state) {
  Tower tower(static_cast<int>(state.range(0)), 4);
  core::Coord h = 12;
  for (auto _ : state) {
    tower.leaf->bounding_box().set_user(Value(Rect{0, 0, 10, h}));
    h = h == 12 ? 10 : 12;
  }
}
BENCHMARK(BM_InvalidationOnly)->DenseRange(1, 4);

// Recalculation alone (lazy demand after invalidation).
static void BM_DemandRecalc(benchmark::State& state) {
  Tower tower(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    state.PauseTiming();
    tower.lib.context().set_enabled(false);
    for (const auto& cell : tower.lib.cells()) {
      if (cell.get() != tower.leaf) cell->bounding_box().reset_raw();
    }
    tower.lib.context().set_enabled(true);
    state.ResumeTiming();
    benchmark::DoNotOptimize(tower.top->bounding_box().demand());
  }
}
BENCHMARK(BM_DemandRecalc)->DenseRange(1, 4);

// Checking a user-pinned placement against class growth (accept vs reject).
static void BM_PlacementCheck(benchmark::State& state) {
  env::Library lib;
  auto& leaf = lib.define_cell("LEAF");
  leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10}));
  auto& top = lib.define_cell("TOP");
  auto& inst = top.add_subcell(leaf, "i");
  inst.bounding_box().set_user(Value(Rect{0, 0, 15, 15}));
  const Value ok(Rect{0, 0, 12, 12});
  const Value too_big(Rect{0, 0, 30, 30});
  for (auto _ : state) {
    benchmark::DoNotOptimize(leaf.bounding_box().set_user(ok));
    benchmark::DoNotOptimize(leaf.bounding_box().set_user(too_big));  // reject
  }
  state.counters["violations"] =
      static_cast<double>(lib.context().stats().violations);
}
BENCHMARK(BM_PlacementCheck);

#include "bench_support.h"
STEMCP_BENCH_MAIN();
