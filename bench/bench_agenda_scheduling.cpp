// E4.7/4.8 — agenda scheduling of functional constraints (thesis §4.2.1).
//
// A functional constraint whose inputs change several times in one
// propagation recomputes once if scheduled on the #functionalConstraints
// agenda, but once per input change if it propagates eagerly.  The bench
// compares the two policies on a fan-in tree and counts recomputations.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/core.h"

using namespace stemcp::core;

namespace {

/// Strawman: an addition constraint that recomputes on every argument
/// change (first-come-first-served).  Assigning each transient sum would
/// trip the one-value-change rule, so the waste measured here is the
/// repeated recomputation itself — exactly the cost the thesis's agenda
/// scheduling avoids ("reduces redundant calculations of transient
/// results", §4.2.1).  The final assignment still goes through the agenda.
class EagerAdditionConstraint : public UniAdditionConstraint {
 public:
  explicit EagerAdditionConstraint(PropagationContext& ctx)
      : UniAdditionConstraint(ctx) {}

  std::uint64_t computations = 0;

  Status propagate_variable(Variable& changed) override {
    if (permit_changes_by(changed)) {
      ++computations;
      benchmark::DoNotOptimize(compute());  // transient result, thrown away
    }
    return UniAdditionConstraint::propagate_variable(changed);
  }
};

/// Counting wrapper over the scheduled (paper) policy.
class CountingAdditionConstraint : public UniAdditionConstraint {
 public:
  explicit CountingAdditionConstraint(PropagationContext& ctx)
      : UniAdditionConstraint(ctx) {}

  std::uint64_t computations = 0;

  Status propagate_scheduled(Variable* changed) override {
    ++computations;
    return UniAdditionConstraint::propagate_scheduled(changed);
  }
};

/// One source equality-fans-out to `width` inputs of a single adder.  A
/// source change touches every input before the sum is needed.
template <typename AdderT>
struct FanIn {
  PropagationContext ctx;
  Variable src{ctx, "f", "src"};
  Variable sum{ctx, "f", "sum"};
  std::vector<std::unique_ptr<Variable>> inputs;
  AdderT* adder = nullptr;

  explicit FanIn(int width) {
    adder = &ctx.make<AdderT>();
    adder->set_result(sum);
    auto& eq = ctx.make<EqualityConstraint>();
    eq.basic_add_argument(src);
    for (int i = 0; i < width; ++i) {
      inputs.push_back(
          std::make_unique<Variable>(ctx, "f", "in" + std::to_string(i)));
      eq.basic_add_argument(*inputs.back());
      adder->basic_add_argument(*inputs.back());
    }
  }
};

}  // namespace

static void BM_ScheduledFunctional(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  FanIn<CountingAdditionConstraint> f(width);
  std::int64_t next = 1;
  for (auto _ : state) {
    f.src.set_user(Value(next++));
    benchmark::DoNotOptimize(f.sum.value());
  }
  state.counters["recomputes/op"] = benchmark::Counter(
      static_cast<double>(f.adder->computations),
      benchmark::Counter::kAvgIterations);
  state.SetComplexityN(width);
}
BENCHMARK(BM_ScheduledFunctional)->RangeMultiplier(4)->Range(4, 256);

static void BM_EagerFunctional(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  FanIn<EagerAdditionConstraint> f(width);
  std::int64_t next = 1;
  for (auto _ : state) {
    f.src.set_user(Value(next++));
    benchmark::DoNotOptimize(f.sum.value());
  }
  state.counters["recomputes/op"] = benchmark::Counter(
      static_cast<double>(f.adder->computations),
      benchmark::Counter::kAvgIterations);
  state.SetComplexityN(width);
}
BENCHMARK(BM_EagerFunctional)->RangeMultiplier(4)->Range(4, 256);

#include "bench_support.h"
STEMCP_BENCH_MAIN();
