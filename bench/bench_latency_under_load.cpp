// Latency under load: end-to-end and per-phase request latency percentiles
// at fixed OFFERED rates, not at whatever rate the service happens to absorb.
//
// Methodology (cf. ssdiq benchlat / the coordinated-omission literature):
//   * Open loop.  Request i has the absolute deadline t0 + i/rate; the
//     generator submits at the deadline regardless of how far behind the
//     service is, so a stall shows up as queueing latency instead of
//     silently throttling the generator.
//   * Latency is measured by the service's own RequestTelemetry spans, whose
//     clock starts at submit time — i.e. it includes the queue wait a closed
//     loop would hide.
//   * Session popularity is zipf-ish (session k gets ~1/(k+1) of the
//     traffic), so per-session lock contention is part of the measurement.
//   * Traffic mix: 50% assign, 20% batch-assign, 20% query, 10% edit;
//     every session journals with `every-record` fsync, so full durability
//     is part of every mutating request's latency.
//
// Each arm is {offered rate in requests/second, shard count}, with ONE
// worker per shard (shard-per-worker, the seastar/redis-cluster shape) and
// every session journaled at full durability, so the shard count is the
// only knob that changes between arms.  At one shard the single worker
// must serialize every fsync with every propagation: at the saturating
// rate the offered fsync time alone exceeds one worker's budget and the
// queue grows without bound.  Sharding overlaps one shard's fsync wait
// with other shards' propagation — a real parallelism win even on a
// single-core host, because a worker blocked in fsync burns no CPU.  The
// per-session work is identical across arms (same seeded request stream),
// which the gate checks via the phase medians; per-fsync wall time rises
// with concurrency (ext4 group commit batches concurrent fsyncs into
// shared journal transactions) while fsync THROUGHPUT scales, which is the
// point.  Session names are picked to spread evenly across 8 shards (and
// therefore across 4 and 1).  The numbers land in the consolidated JSON as
// e2e_* / queue_* / lock_* / propagate_* / journal_* / fsync_* counters
// (ns), which bench/snapshots/BENCH_*.json snapshots and
// `tools/bench_compare.py gate --phase queue,lock` asserts (see
// tools/run_tier1.sh --bench and docs/PERFORMANCE.md).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "service/design_service.h"

namespace {

using namespace stemcp;
using service::Assignment;
using service::DesignService;
using service::Phase;
using service::Request;
using service::RequestType;

const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 1
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

constexpr int kSessions = 8;
// Each arm offers at least this many requests AND at least one second of
// traffic at its rate (see requests_for_rate): with every-record fsync a
// single multi-ms disk stall is always possible, and the run must be long
// enough that one stall backs up fewer than 1% of requests — otherwise the
// queue p99 measures the disk's worst hiccup instead of the architecture.
constexpr int kMinRequestsPerRun = 3000;

int requests_for_rate(double rate_rps) {
  return std::max(kMinRequestsPerRun, static_cast<int>(rate_rps));
}


/// Session names chosen so name i hashes to shard i mod 8.  Because
/// h % 4 == (h % 8) % 4, the same names are also perfectly balanced at 4
/// shards — every shard arm offers identical per-session request streams.
std::vector<std::string> shard_spread_names(int count) {
  std::vector<std::string> names;
  names.reserve(count);
  for (int i = 0; i < count; ++i) {
    for (int suffix = 0;; ++suffix) {
      std::string name = "s" + std::to_string(i);
      if (suffix > 0) name += "_" + std::to_string(suffix);
      if (service::ShardedSessionManager::hash_of(name) % 8 ==
          static_cast<std::uint64_t>(i % 8)) {
        names.push_back(std::move(name));
        break;
      }
    }
  }
  return names;
}

Request make(RequestType t, const std::string& session,
             std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

/// Deterministic xorshift so every run offers the identical request stream.
struct Rng {
  std::uint64_t s = 0x9E3779B97F4A7C15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

/// Zipf-ish popularity: session k is picked with weight 1/(k+1).
int pick_session(Rng& rng) {
  static const int kTotalWeight = [] {
    int w = 0;
    for (int k = 0; k < kSessions; ++k) w += 1000 / (k + 1);
    return w;
  }();
  int roll = static_cast<int>(rng.below(kTotalWeight));
  for (int k = 0; k < kSessions; ++k) {
    roll -= 1000 / (k + 1);
    if (roll < 0) return k;
  }
  return 0;
}

Request next_request(Rng& rng, const std::vector<std::string>& names,
                     double* value) {
  const std::string& name = names[pick_session(rng)];
  *value += 1e-9;  // a new value every wave (one-value-change rule)
  const std::uint64_t kind = rng.below(10);
  if (kind < 5) {
    Request r = make(RequestType::kAssign, name);
    r.assignments.push_back({"PIPE/s0.delay(in->out)", *value});
    return r;
  }
  if (kind < 7) {
    Request r = make(RequestType::kBatchAssign, name);
    r.assignments.push_back({"PIPE/s0.delay(in->out)", *value});
    r.assignments.push_back({"PIPE/s1.delay(in->out)", *value});
    return r;
  }
  if (kind < 9) {
    return make(RequestType::kQuery, name, "PIPE.delay(in->out)");
  }
  return make(RequestType::kEdit, name,
              "leaf-delay STAGE in out " + std::to_string(*value));
}

/// One {offered rate, shards} arm: fresh service, fixed request count,
/// absolute-deadline submission, percentiles from the service's own
/// telemetry fold.
void BM_LatencyUnderLoad(benchmark::State& state) {
  const double rate_rps = static_cast<double>(state.range(0));
  const std::size_t shards = static_cast<std::size_t>(state.range(1));
  const std::size_t workers_per_shard = 1;  // shard-per-worker (see header)
  for (auto _ : state) {
    DesignService svc(workers_per_shard, shards);
    const std::vector<std::string> names = shard_spread_names(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      svc.call(make(RequestType::kOpen, names[i]));
      svc.call(make(RequestType::kLoad, names[i], kPipeline));
    }
    // Every session journaled with full durability.
    char base[64];
    std::snprintf(base, sizeof base, "bench_latency_%d_%d.tmp",
                  static_cast<int>(rate_rps), static_cast<int>(shards));
    for (int i = 0; i < kSessions; ++i) {
      svc.call(make(RequestType::kJournal, names[i],
                    std::string(base) + "_" + std::to_string(i) + " every-record"));
    }

    Rng rng;
    double value = 1e-9;
    const int requests = requests_for_rate(rate_rps);
    std::vector<std::future<service::Response>> inflight;
    inflight.reserve(requests);
    const auto t0 = std::chrono::steady_clock::now();
    const double period_ns = 1e9 / rate_rps;
    for (int i = 0; i < requests; ++i) {
      // Absolute deadline: never reschedule off the previous submit, so a
      // slow stretch cannot quietly lower the offered rate.
      const auto deadline =
          t0 + std::chrono::nanoseconds(
                   static_cast<std::int64_t>(period_ns * i));
      std::this_thread::sleep_until(deadline);
      inflight.push_back(svc.submit(next_request(rng, names, &value)));
    }
    for (auto& f : inflight) benchmark::DoNotOptimize(f.get().ok);

    // Percentiles from the service's own spans (clock starts at submit, so
    // queue wait under overload is counted — no coordinated omission).
    const core::MetricsRegistry folded = svc.telemetry().fold();
    static const struct {
      Phase phase;
      const char* key;
    } kPhases[] = {
        {Phase::kTotal, "e2e"},         {Phase::kQueue, "queue"},
        {Phase::kLock, "lock"},         {Phase::kPropagate, "propagate"},
        {Phase::kJournal, "journal"},   {Phase::kFsync, "fsync"},
    };
    for (const auto& row : kPhases) {
      const core::Histogram* h = folded.find_histogram(
          std::string("svc.lat.") + service::to_string(row.phase) + "_ns");
      if (h != nullptr) {
        benchsupport::counters_from_histogram(state, row.key, *h);
      }
    }
    for (const auto& name : names) {
      svc.call(make(RequestType::kClose, name));
    }
    for (int i = 0; i < kSessions; ++i) {
      const std::string b = std::string(base) + "_" + std::to_string(i);
      std::remove((b + ".journal").c_str());
      std::remove((b + ".ckpt").c_str());
    }
  }
  state.counters["offered_rps"] = rate_rps;
  state.counters["shards"] = static_cast<double>(shards);
  state.SetItemsProcessed(state.iterations() * requests_for_rate(rate_rps));
}
// Three offered rates at 1 shard: comfortable, busy, saturating (at 12000
// rps the offered fsync work alone overloads one worker), then the
// saturating rate again at 4 and 8 shards — the sharding acceptance arms
// (queue+lock p99 must improve >=2x from /12000/1 to /12000/8 while the
// propagate/fsync medians stay within one log2 bucket).  One timed
// repetition per arm — the arm's wall time is dominated by
// requests / rate, so iteration count must not scale with how fast the
// code is.
BENCHMARK(BM_LatencyUnderLoad)
    ->Args({500, 1})
    ->Args({2000, 1})
    ->Args({12000, 1})
    ->Args({12000, 4})
    ->Args({12000, 8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

STEMCP_BENCH_MAIN()
