// Latency under load: end-to-end and per-phase request latency percentiles
// at fixed OFFERED rates, not at whatever rate the service happens to absorb.
//
// Methodology (cf. ssdiq benchlat / the coordinated-omission literature):
//   * Open loop.  Request i has the absolute deadline t0 + i/rate; the
//     generator submits at the deadline regardless of how far behind the
//     service is, so a stall shows up as queueing latency instead of
//     silently throttling the generator.
//   * Latency is measured by the service's own RequestTelemetry spans, whose
//     clock starts at submit time — i.e. it includes the queue wait a closed
//     loop would hide.
//   * Session popularity is zipf-ish (session k gets ~1/(k+1) of the
//     traffic), so per-session lock contention is part of the measurement.
//   * Traffic mix: 50% assign, 20% batch-assign, 20% query, 10% edit, with
//     one journaled session so the journal/fsync phases appear.
//
// Each Arg is the offered rate in requests/second.  The numbers land in the
// consolidated JSON as e2e_* / queue_* / lock_* / propagate_* / journal_* /
// fsync_* counters (ns), which BENCH_0006.json snapshots and
// tools/bench_compare.py gates.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "service/design_service.h"

namespace {

using namespace stemcp;
using service::Assignment;
using service::DesignService;
using service::Phase;
using service::Request;
using service::RequestType;

const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 1
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

constexpr int kSessions = 8;
constexpr int kRequestsPerRun = 2000;

Request make(RequestType t, const std::string& session,
             std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

/// Deterministic xorshift so every run offers the identical request stream.
struct Rng {
  std::uint64_t s = 0x9E3779B97F4A7C15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

/// Zipf-ish popularity: session k is picked with weight 1/(k+1).
int pick_session(Rng& rng) {
  static const int kTotalWeight = [] {
    int w = 0;
    for (int k = 0; k < kSessions; ++k) w += 1000 / (k + 1);
    return w;
  }();
  int roll = static_cast<int>(rng.below(kTotalWeight));
  for (int k = 0; k < kSessions; ++k) {
    roll -= 1000 / (k + 1);
    if (roll < 0) return k;
  }
  return 0;
}

Request next_request(Rng& rng, const std::vector<std::string>& names,
                     double* value) {
  const std::string& name = names[pick_session(rng)];
  *value += 1e-9;  // a new value every wave (one-value-change rule)
  const std::uint64_t kind = rng.below(10);
  if (kind < 5) {
    Request r = make(RequestType::kAssign, name);
    r.assignments.push_back({"PIPE/s0.delay(in->out)", *value});
    return r;
  }
  if (kind < 7) {
    Request r = make(RequestType::kBatchAssign, name);
    r.assignments.push_back({"PIPE/s0.delay(in->out)", *value});
    r.assignments.push_back({"PIPE/s1.delay(in->out)", *value});
    return r;
  }
  if (kind < 9) {
    return make(RequestType::kQuery, name, "PIPE.delay(in->out)");
  }
  return make(RequestType::kEdit, name,
              "leaf-delay STAGE in out " + std::to_string(*value));
}

/// One offered-rate arm: fresh service, fixed request count, absolute-
/// deadline submission, percentiles from the service's own telemetry fold.
void BM_LatencyUnderLoad(benchmark::State& state) {
  const double rate_rps = static_cast<double>(state.range(0));
  for (auto _ : state) {
    DesignService svc(4);
    std::vector<std::string> names;
    for (int i = 0; i < kSessions; ++i) {
      names.push_back("s" + std::to_string(i));
      svc.call(make(RequestType::kOpen, names.back()));
      svc.call(make(RequestType::kLoad, names.back(), kPipeline));
    }
    // One journaled session so journal append + fsync phases show up.
    char base[64];
    std::snprintf(base, sizeof base, "bench_latency_%d.tmp",
                  static_cast<int>(rate_rps));
    svc.call(make(RequestType::kJournal, names[0],
                  std::string(base) + " interval 8"));

    Rng rng;
    double value = 1e-9;
    std::vector<std::future<service::Response>> inflight;
    inflight.reserve(kRequestsPerRun);
    const auto t0 = std::chrono::steady_clock::now();
    const double period_ns = 1e9 / rate_rps;
    for (int i = 0; i < kRequestsPerRun; ++i) {
      // Absolute deadline: never reschedule off the previous submit, so a
      // slow stretch cannot quietly lower the offered rate.
      const auto deadline =
          t0 + std::chrono::nanoseconds(
                   static_cast<std::int64_t>(period_ns * i));
      std::this_thread::sleep_until(deadline);
      inflight.push_back(svc.submit(next_request(rng, names, &value)));
    }
    for (auto& f : inflight) benchmark::DoNotOptimize(f.get().ok);

    // Percentiles from the service's own spans (clock starts at submit, so
    // queue wait under overload is counted — no coordinated omission).
    const core::MetricsRegistry folded = svc.telemetry().fold();
    static const struct {
      Phase phase;
      const char* key;
    } kPhases[] = {
        {Phase::kTotal, "e2e"},         {Phase::kQueue, "queue"},
        {Phase::kLock, "lock"},         {Phase::kPropagate, "propagate"},
        {Phase::kJournal, "journal"},   {Phase::kFsync, "fsync"},
    };
    for (const auto& row : kPhases) {
      const core::Histogram* h = folded.find_histogram(
          std::string("svc.lat.") + service::to_string(row.phase) + "_ns");
      if (h != nullptr) {
        benchsupport::counters_from_histogram(state, row.key, *h);
      }
    }
    for (const auto& name : names) {
      svc.call(make(RequestType::kClose, name));
    }
    std::remove((std::string(base) + ".journal").c_str());
    std::remove((std::string(base) + ".ckpt").c_str());
  }
  state.counters["offered_rps"] = rate_rps;
  state.SetItemsProcessed(state.iterations() * kRequestsPerRun);
}
// Three offered rates: comfortable, busy, saturating (the queue phase is
// where the difference shows).  One timed repetition per arm — the arm's
// wall time is dominated by kRequestsPerRun / rate, so iteration count must
// not scale with how fast the code is.
BENCHMARK(BM_LatencyUnderLoad)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

STEMCP_BENCH_MAIN()
