// E7.4 — the thesis's applicability boundary (§7.4/§9.2.3): "low-level
// design checks, such as layout design rule checking, are not suitable
// candidate applications for this approach because more specialized ...
// algorithms are necessary to achieve adequate speed".
//
// Both sides implemented: the general framework (SpacingConstraints +
// relaxation) vs the dedicated constraint-graph compactor, on row layouts
// of growing size.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/core.h"
#include "stem/layout/compaction.h"

using namespace stemcp;
using core::Value;

static void BM_DedicatedCompaction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  env::layout::CompactionGraph g;
  std::vector<env::layout::NodeId> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(g.add_node("n" + std::to_string(i)));
  }
  g.pin(nodes[0], 0);
  for (int i = 0; i + 1 < n; ++i) {
    g.add_spacing(nodes[static_cast<std::size_t>(i)],
                  nodes[static_cast<std::size_t>(i) + 1], 3 + i % 5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.compact());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DedicatedCompaction)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

static void BM_GeneralFrameworkCompaction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::PropagationContext ctx;
  std::vector<std::unique_ptr<core::Variable>> vars;
  std::vector<core::Constraint*> cons;
  ctx.set_enabled(false);
  for (int i = 0; i < n; ++i) {
    vars.push_back(std::make_unique<core::Variable>(
        ctx, "row", "n" + std::to_string(i)));
  }
  ctx.set_enabled(true);
  for (int i = 0; i + 1 < n; ++i) {
    cons.push_back(&ctx.make<core::SpacingConstraint>(3.0 + i % 5));
    cons.back()->basic_add_argument(*vars[static_cast<std::size_t>(i)]);
    cons.back()->basic_add_argument(*vars[static_cast<std::size_t>(i) + 1]);
  }
  for (auto _ : state) {
    // Reset positions, then solve from scratch (comparable to compact()).
    ctx.set_enabled(false);
    vars[0]->set(Value(0.0), core::Justification::user());
    for (int i = 1; i < n; ++i) {
      vars[static_cast<std::size_t>(i)]->set(
          Value(0.0), core::Justification::application());
    }
    ctx.set_enabled(true);
    benchmark::DoNotOptimize(core::RelaxationSolver::solve(ctx, cons));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GeneralFrameworkCompaction)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

#include "bench_support.h"
STEMCP_BENCH_MAIN();
