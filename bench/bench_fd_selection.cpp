// E-FD — FD module selection versus generate-and-test (ISSUE 8,
// docs/SOLVER.md), on the same class-tree family as bench_fig8_4_pruning:
// a generic root with `families` generic subtrees of `leaves` leaves each,
// only the last family feasible under the parent's 10 ns budget.
//
// The generate-and-test arm probes every leaf through the propagation
// engine (assign, propagate, restore per candidate).  The FD arm builds one
// set-domain variable over the candidates and prunes it with arithmetic
// filters — generic subtree cuts included — so at the largest library size
// it explores an order of magnitude fewer candidates and finishes faster.
// Both arms report the same "cands" counter; tools/run_tier1.sh --bench
// gates FD/G&T on it via bench_compare.py.
//
// BM_NQueens drives the raw fd::Problem/Search machinery on a classic CSP
// stress network (all-solutions n-queens) to size propagator scheduling and
// trail costs without any design-database involvement.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fd/selection.h"
#include "fd/solver.h"
#include "stem/stem.h"

using namespace stemcp;
using core::BoundConstraint;
using core::Rect;
using core::Value;
using env::SignalDirection;

namespace {
constexpr double kNs = 1e-9;

/// The bench_fig8_4_pruning fixture: `families` generic subtrees of
/// `leaves` leaves each under a generic root; only the last family's
/// subtree can meet the 10 ns delay budget.
struct Tree {
  env::Library lib;
  env::CellClass* root;
  env::CellInstance* slot;

  Tree(int families, int leaves) {
    root = &lib.define_cell("GEN");
    root->set_generic(true);
    root->declare_signal("in", SignalDirection::kInput);
    root->declare_signal("out", SignalDirection::kOutput);
    root->declare_delay("in", "out");
    for (int f = 0; f < families; ++f) {
      auto& fam = lib.define_cell("FAM" + std::to_string(f), root);
      fam.set_generic(true);
      const bool feasible = f + 1 == families;
      const double best = feasible ? 5 * kNs : 50 * kNs;
      fam.set_leaf_delay("in", "out", best);
      fam.bounding_box().set_user(Value(Rect{0, 0, 8, 8}));
      for (int l = 0; l < leaves; ++l) {
        auto& leaf = lib.define_cell(
            "FAM" + std::to_string(f) + ".L" + std::to_string(l), &fam);
        leaf.set_leaf_delay("in", "out", best + l * kNs);
        leaf.bounding_box().set_user(Value(Rect{0, 0, 8, 8 + l}));
      }
    }
    auto& top = lib.define_cell("TOP");
    top.declare_signal("in", SignalDirection::kInput);
    top.declare_signal("out", SignalDirection::kOutput);
    auto& d = top.declare_delay("in", "out");
    slot = &top.add_subcell(*root, "u");
    auto& n1 = top.add_net("n1");
    n1.connect_io("in");
    n1.connect(*slot, "in");
    auto& n2 = top.add_net("n2");
    n2.connect(*slot, "out");
    n2.connect_io("out");
    top.build_delay_networks();
    slot->bounding_box().set_user(Value(Rect{0, 0, 64, 64}));
    BoundConstraint::upper(lib.context(), d, Value(10 * kNs));
  }
};

}  // namespace

static void BM_FdSelect(benchmark::State& state) {
  Tree t(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  std::uint64_t cands = 0;
  std::uint64_t sols = 0;
  for (auto _ : state) {
    fd::SelectionSpace space(t.lib);
    space.add_slot(*t.root, *t.slot);
    if (space.establish()) space.solve(0);
    benchmark::DoNotOptimize(space.solutions());
    cands += space.stats().candidates_explored;
    sols += space.stats().solutions;
  }
  state.counters["cands"] = benchmark::Counter(
      static_cast<double>(cands), benchmark::Counter::kAvgIterations);
  state.counters["sols"] = benchmark::Counter(
      static_cast<double>(sols), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FdSelect)->Args({8, 8})->Args({16, 16})->Args({64, 64});

static void BM_GenerateAndTest(benchmark::State& state) {
  Tree t(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  std::uint64_t sols = 0;
  for (auto _ : state) {
    const auto found = t.root->valid_realizations_unpruned(*t.slot, {});
    benchmark::DoNotOptimize(found);
    sols += found.size();
  }
  state.counters["cands"] = benchmark::Counter(
      static_cast<double>(t.lib.selection_stats().candidates_tested),
      benchmark::Counter::kAvgIterations);
  state.counters["sols"] = benchmark::Counter(
      static_cast<double>(sols), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_GenerateAndTest)->Args({8, 8})->Args({16, 16})->Args({64, 64});

static void BM_NQueens(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t nodes = 0;
  std::uint64_t sols = 0;
  for (auto _ : state) {
    fd::Problem p;
    std::vector<fd::DomainVariable*> rows;
    for (std::size_t i = 0; i < n; ++i) {
      rows.push_back(&p.add_set_variable("q" + std::to_string(i), n));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const long long d = static_cast<long long>(j - i);
        p.make<fd::NotEqualOffsetPropagator>(*rows[i], *rows[j], 0);
        p.make<fd::NotEqualOffsetPropagator>(*rows[i], *rows[j], d);
        p.make<fd::NotEqualOffsetPropagator>(*rows[i], *rows[j], -d);
      }
    }
    fd::Search search(p);
    fd::Search::Options opts;
    opts.max_solutions = 0;  // all
    search.solve(opts, [] { return true; });
    nodes += search.stats().nodes;
    sols += search.stats().solutions;
  }
  state.counters["nodes"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
  state.counters["sols"] = benchmark::Counter(
      static_cast<double>(sols), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_NQueens)->Arg(6)->Arg(8)->Arg(9);

#include "bench_support.h"
STEMCP_BENCH_MAIN();
