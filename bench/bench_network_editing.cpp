// E4.13/4.14 — live network editing: constraint addition (with precedence-
// ordered re-propagation) and deletion (with dependency-directed erasure).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/core.h"

using namespace stemcp::core;

// Adding an equality between two populated fan-out groups re-propagates the
// user value through the union.
static void BM_AddConstraintToLiveNetwork(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PropagationContext ctx;
  Variable a(ctx, "e", "a"), b(ctx, "e", "b");
  std::vector<std::unique_ptr<Variable>> group_a, group_b;
  auto& eq_a = ctx.make<EqualityConstraint>();
  eq_a.basic_add_argument(a);
  auto& eq_b = ctx.make<EqualityConstraint>();
  eq_b.basic_add_argument(b);
  for (int i = 0; i < n; ++i) {
    group_a.push_back(
        std::make_unique<Variable>(ctx, "e", "a" + std::to_string(i)));
    eq_a.basic_add_argument(*group_a.back());
    group_b.push_back(
        std::make_unique<Variable>(ctx, "e", "b" + std::to_string(i)));
    eq_b.basic_add_argument(*group_b.back());
  }
  a.set_user(Value(1));

  for (auto _ : state) {
    // Bridge the groups: b's side floods with a's value...
    auto& bridge = ctx.make<EqualityConstraint>();
    bridge.basic_add_argument(a);
    bridge.basic_add_argument(b);
    bridge.reinitialize_variables();
    // ...then tear the bridge down: b's side erases again.
    ctx.destroy_constraint(bridge);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AddConstraintToLiveNetwork)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

// Churn on specification predicates: the common editor action of tightening
// and relaxing bounds on a characterized variable.
static void BM_SpecChurn(benchmark::State& state) {
  PropagationContext ctx;
  Variable d(ctx, "cell", "delay");
  d.set_application(Value(100.0));
  for (auto _ : state) {
    auto& bound = BoundConstraint::upper(ctx, d, Value(150.0));
    ctx.destroy_constraint(bound);
  }
}
BENCHMARK(BM_SpecChurn);

// Argument-level editing (thesis Fig 4.13/4.14) on a shared constraint.
static void BM_ArgumentJoinLeave(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PropagationContext ctx;
  Variable hub(ctx, "e", "hub");
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(hub);
  std::vector<std::unique_ptr<Variable>> members;
  for (int i = 0; i < n; ++i) {
    members.push_back(
        std::make_unique<Variable>(ctx, "e", "m" + std::to_string(i)));
    eq.basic_add_argument(*members.back());
  }
  hub.set_user(Value(7));
  Variable joiner(ctx, "e", "joiner");
  for (auto _ : state) {
    eq.add_argument(joiner);     // receives 7 via re-propagation
    eq.remove_argument(joiner);  // erased via dependency analysis
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ArgumentJoinLeave)->RangeMultiplier(4)->Range(4, 256);

#include "bench_support.h"
STEMCP_BENCH_MAIN();
