// Macro workload replay (ISSUE 10, docs/WORKLOAD.md): replay the COMMITTED
// mixed_storm scenario (examples/traces/mixed_storm.scenario) through a
// fresh journaled DesignService, in both loops:
//
//   * closed loop — submit as fast as the service absorbs: the throughput
//     arm (items_per_second = requests/s end to end, full durability).
//   * open loop — honor the scenario's recorded arrival offsets (burst/idle
//     phases included): the latency arm.  Percentiles come from the
//     service's own telemetry spans, whose clock starts at submit time, so
//     queue wait under the bursts is counted (no coordinated omission —
//     the bench_latency_under_load methodology, driven by a trace instead
//     of an inline generator).
//
// The e2e_p99 counter of the open-loop arm is gated by tools/run_tier1.sh
// --bench via tools/bench_compare.py against bench/snapshots/BENCH_*.json.
// Both arms replay the identical synthesized request stream — the scenario
// is seeded, so every run of this binary measures the same traffic.
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_support.h"
#include "workload/replay.h"
#include "workload/synth.h"

namespace {

using namespace stemcp;

const char* kScenarioPath =
    STEMCP_SOURCE_DIR "/examples/traces/mixed_storm.scenario";

const std::vector<workload::TraceRecord>& scenario_records() {
  static const std::vector<workload::TraceRecord> records = [] {
    workload::Scenario sc;
    std::string err;
    if (!workload::load_scenario_file(kScenarioPath, &sc, &err)) {
      std::fprintf(stderr, "bench_workload_replay: %s\n", err.c_str());
      std::exit(1);
    }
    return workload::synthesize(sc);
  }();
  return records;
}

void run_arm(benchmark::State& state, bool closed_loop) {
  const std::vector<workload::TraceRecord>& records = scenario_records();
  const std::string jroot = "bench_workload_replay.tmp";
  for (auto _ : state) {
    workload::ReplayOptions opts;
    opts.closed_loop = closed_loop;
    opts.journal_base = "bwr";
    opts.journal_spec = "every-record";
    opts.journal_root = jroot;
    opts.collect_images = false;  // measure traffic, not the save epilogue
    workload::ReplayReport report;
    std::string err;
    if (!workload::replay_records(records, opts, &report, &err)) {
      state.SkipWithError(err.c_str());
      break;
    }
    state.counters["errors"] = static_cast<double>(report.errors);
    state.counters["achieved_rps"] = report.achieved_rps();
    static const char* kPhases[] = {"queue",   "lock", "propagate",
                                    "journal", "fsync"};
    if (const core::Histogram* h =
            report.telemetry.find_histogram("svc.lat.total_ns")) {
      benchsupport::counters_from_histogram(state, "e2e", *h);
    }
    for (const char* phase : kPhases) {
      if (const core::Histogram* h = report.telemetry.find_histogram(
              std::string("svc.lat.") + phase + "_ns")) {
        benchsupport::counters_from_histogram(state, phase, *h);
      }
    }
    std::filesystem::remove_all(jroot);
  }
  state.counters["trace_records"] = static_cast<double>(records.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}

// One timed repetition per arm: the open-loop arm's wall time is pinned to
// the scenario's span, so iteration count must not scale with code speed.
void BM_WorkloadReplayClosedLoop(benchmark::State& state) {
  run_arm(state, /*closed_loop=*/true);
}
BENCHMARK(BM_WorkloadReplayClosedLoop)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_WorkloadReplayOpenLoop(benchmark::State& state) {
  run_arm(state, /*closed_loop=*/false);
}
BENCHMARK(BM_WorkloadReplayOpenLoop)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

STEMCP_BENCH_MAIN()
