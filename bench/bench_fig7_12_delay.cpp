// E7.10-7.12 — hierarchical delay networks (thesis §7.3): network
// construction cost, incremental leaf re-characterization vs full rebuild,
// and scaling with chain length.
#include <benchmark/benchmark.h>

#include <memory>

#include "stem/stem.h"

using namespace stemcp;
using core::Value;
using env::SignalDirection;

namespace {
constexpr double kNs = 1e-9;

struct Pipeline {
  env::Library lib;
  env::CellClass* stage;
  env::CellClass* top;
  env::ClassDelayVar* top_delay;

  explicit Pipeline(int stages) {
    stage = &lib.define_cell("STAGE");
    stage->declare_signal("in", SignalDirection::kInput);
    stage->declare_signal("out", SignalDirection::kOutput);
    stage->declare_delay("in", "out");
    top = &lib.define_cell("PIPE");
    top->declare_signal("in", SignalDirection::kInput);
    top->declare_signal("out", SignalDirection::kOutput);
    top_delay = &top->declare_delay("in", "out");
    env::CellInstance* prev = nullptr;
    for (int i = 0; i < stages; ++i) {
      auto& u = top->add_subcell(*stage, "u" + std::to_string(i));
      auto& net = top->add_net("n" + std::to_string(i));
      if (i == 0) {
        net.connect_io("in");
      } else {
        net.connect(*prev, "out");
      }
      net.connect(u, "in");
      prev = &u;
    }
    auto& n_out = top->add_net("n_out");
    n_out.connect(*prev, "out");
    n_out.connect_io("out");
    top->build_delay_networks();
    stage->set_leaf_delay("in", "out", 2 * kNs);
  }
};

}  // namespace

// Incremental: a leaf re-characterization updates all N instance duals, the
// path sum, the top max — one propagation, no rebuild.
static void BM_IncrementalRecharacterize(benchmark::State& state) {
  Pipeline p(static_cast<int>(state.range(0)));
  double d = 2 * kNs;
  for (auto _ : state) {
    d = d == 2 * kNs ? 3 * kNs : 2 * kNs;
    p.stage->set_leaf_delay("in", "out", d);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IncrementalRecharacterize)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

// The batch alternative: rebuild the whole delay network then re-derive.
static void BM_FullRebuild(benchmark::State& state) {
  Pipeline p(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    p.top->build_delay_networks();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullRebuild)->RangeMultiplier(4)->Range(4, 256)->Complexity();

// Path enumeration alone.
static void BM_PathEnumeration(benchmark::State& state) {
  Pipeline p(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.top->delay_paths("in", "out"));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PathEnumeration)->RangeMultiplier(4)->Range(4, 256)->Complexity();

// RC loading: each stage also sees a load-adjustment term; verify the
// propagation cost is unchanged by the model detail.
static void BM_IncrementalWithRcModel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  env::Library lib;
  auto& stage = lib.define_cell("STAGE");
  stage.declare_signal("in", SignalDirection::kInput);
  stage.declare_signal("out", SignalDirection::kOutput);
  stage.signal("in").set_load_capacitance(50e-15);
  stage.signal("out").set_output_resistance(2e3);
  stage.declare_delay("in", "out");
  auto& top = lib.define_cell("PIPE");
  top.declare_signal("in", SignalDirection::kInput);
  top.declare_signal("out", SignalDirection::kOutput);
  top.declare_delay("in", "out");
  env::CellInstance* prev = nullptr;
  for (int i = 0; i < n; ++i) {
    auto& u = top.add_subcell(stage, "u" + std::to_string(i));
    auto& net = top.add_net("n" + std::to_string(i));
    if (i == 0) {
      net.connect_io("in");
    } else {
      net.connect(*prev, "out");
    }
    net.connect(u, "in");
    prev = &u;
  }
  auto& n_out = top.add_net("n_out");
  n_out.connect(*prev, "out");
  n_out.connect_io("out");
  top.build_delay_networks();

  double d = 2 * kNs;
  for (auto _ : state) {
    d = d == 2 * kNs ? 3 * kNs : 2 * kNs;
    stage.set_leaf_delay("in", "out", d);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_IncrementalWithRcModel)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

#include "bench_support.h"
STEMCP_BENCH_MAIN();
