// E5.2 — Fig 5.2: the ACCUMULATOR scenario end to end — re-characterizing a
// leaf sweeps the whole hierarchy (instance adjust, path sums, class max,
// spec checks) in one propagation; a violating characterization additionally
// pays for restore.
#include <benchmark/benchmark.h>

#include <memory>

#include "stem/stem.h"

using namespace stemcp;
using core::BoundConstraint;
using core::Value;
using env::SignalDirection;

namespace {
constexpr double kNs = 1e-9;

struct Accumulator {
  env::Library lib;
  env::CellClass* reg;
  env::CellClass* adder;
  env::CellClass* acc;
  env::ClassDelayVar* acc_delay;

  Accumulator() {
    reg = &lib.define_cell("REGISTER");
    reg->declare_signal("in", SignalDirection::kInput);
    reg->declare_signal("out", SignalDirection::kOutput);
    reg->declare_delay("in", "out");
    adder = &lib.define_cell("ADDER");
    adder->declare_signal("a", SignalDirection::kInput);
    adder->declare_signal("out", SignalDirection::kOutput);
    adder->declare_delay("a", "out");
    BoundConstraint::upper(lib.context(), *adder->find_delay("a", "out"),
                           Value(120 * kNs));
    acc = &lib.define_cell("ACCUMULATOR");
    acc->declare_signal("in", SignalDirection::kInput);
    acc->declare_signal("out", SignalDirection::kOutput);
    acc_delay = &acc->declare_delay("in", "out");
    BoundConstraint::upper(lib.context(), *acc_delay, Value(160 * kNs));
    auto& r = acc->add_subcell(*reg, "reg");
    auto& a = acc->add_subcell(*adder, "add");
    auto& n_in = acc->add_net("n_in");
    n_in.connect_io("in");
    n_in.connect(r, "in");
    auto& n_mid = acc->add_net("n_mid");
    n_mid.connect(r, "out");
    n_mid.connect(a, "a");
    auto& n_out = acc->add_net("n_out");
    n_out.connect(a, "out");
    n_out.connect_io("out");
    acc->build_delay_networks();
    reg->set_leaf_delay("in", "out", 60 * kNs);
  }
};

}  // namespace

// Accepting characterization: full hierarchy update.
static void BM_AcceptedCharacterization(benchmark::State& state) {
  Accumulator f;
  double d = 90 * kNs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.adder->set_leaf_delay("a", "out", d));
    d = d == 90 * kNs ? 85 * kNs : 90 * kNs;
  }
}
BENCHMARK(BM_AcceptedCharacterization);

// Rejected characterization: detection at the accumulator level + restore.
static void BM_RejectedCharacterization(benchmark::State& state) {
  Accumulator f;
  f.adder->set_leaf_delay("a", "out", 90 * kNs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.adder->set_leaf_delay("a", "out", 110 * kNs));
  }
  state.counters["violations"] =
      static_cast<double>(f.lib.context().stats().violations);
}
BENCHMARK(BM_RejectedCharacterization);

// Building the delay network itself (path enumeration + constraint setup).
static void BM_BuildDelayNetwork(benchmark::State& state) {
  Accumulator f;
  for (auto _ : state) {
    f.acc->build_delay_networks();
  }
}
BENCHMARK(BM_BuildDelayNetwork);

#include "bench_support.h"
STEMCP_BENCH_MAIN();
