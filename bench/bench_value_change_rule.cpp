// E9.2.3b — the value-change-rule ablation: cost of reconvergent-fanout
// convergence as the per-variable change budget rises (thesis §9.2.3's
// "quick fix": allow N value changes per propagation cycle).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/core.h"

using namespace stemcp::core;

namespace {

/// A reconvergent ladder: stage i has two constraints feeding one variable
/// chainwise such that FIFO order recomputes stage i once per upstream
/// correction.  Depth d therefore needs a change budget that grows with the
/// number of reconvergent stages.
struct Ladder {
  PropagationContext ctx;
  std::vector<std::unique_ptr<Variable>> vars;

  explicit Ladder(int depth) {
    vars.push_back(std::make_unique<Variable>(ctx, "l", "src"));
    Variable* prev = vars.back().get();
    for (int i = 0; i < depth; ++i) {
      vars.push_back(std::make_unique<Variable>(
          ctx, "l", "mid" + std::to_string(i)));
      Variable* mid = vars.back().get();
      vars.push_back(std::make_unique<Variable>(
          ctx, "l", "out" + std::to_string(i)));
      Variable* out = vars.back().get();
      // out = prev + mid, where mid = prev + 1: `out` is scheduled once by
      // prev (stale mid) and again after mid refreshes.
      auto& consumer = ctx.make<UniAdditionConstraint>(0.0);
      consumer.set_result(*out);
      consumer.basic_add_argument(*prev);
      consumer.basic_add_argument(*mid);
      auto& producer = ctx.make<UniAdditionConstraint>(1.0);
      producer.set_result(*mid);
      producer.basic_add_argument(*prev);
      prev = out;
    }
  }
};

}  // namespace

static void BM_ReconvergentLadder(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int budget = static_cast<int>(state.range(1));
  Ladder ladder(depth);
  ladder.ctx.set_max_changes_per_variable(budget);
  double next = 1.0;
  std::uint64_t violations = 0;
  for (auto _ : state) {
    const Status s = ladder.vars[0]->set_user(Value(next));
    if (s.is_violation()) ++violations;
    next += 1.0;
  }
  state.counters["violations/op"] = benchmark::Counter(
      static_cast<double>(violations), benchmark::Counter::kAvgIterations);
  state.counters["assignments/op"] = benchmark::Counter(
      static_cast<double>(ladder.ctx.stats().assignments),
      benchmark::Counter::kAvgIterations);
}
// depth x budget: budget 1 = the thesis's strict rule (always violates for
// depth >= 1 after warmup), larger budgets converge at growing cost.
BENCHMARK(BM_ReconvergentLadder)
    ->ArgsProduct({{1, 4, 16}, {1, 2, 8, 64}});

#include "bench_support.h"
STEMCP_BENCH_MAIN();
