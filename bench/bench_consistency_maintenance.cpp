// E6.1/6.4 — consistency maintenance (thesis ch. 6): update-constraints +
// implicit invocation (erase now, recalculate on demand) versus eager
// recomputation on every edit, under edit storms.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/core.h"
#include "stem/hierarchy.h"

using namespace stemcp;
using core::PropagationContext;
using core::UpdateConstraint;
using core::Value;
using core::Variable;

namespace {

/// A model with S source fields and one derived property whose
/// recalculation reads every source (cost ~ S).
struct Derived {
  PropagationContext ctx;
  std::vector<std::unique_ptr<Variable>> sources;
  env::StemVariable property{ctx, "cell", "derived"};
  std::uint64_t recalcs = 0;

  explicit Derived(int s) {
    auto& update = ctx.make<UpdateConstraint>();
    update.add_target(property);
    for (int i = 0; i < s; ++i) {
      sources.push_back(
          std::make_unique<Variable>(ctx, "cell", "src" + std::to_string(i)));
      sources.back()->set_user(Value(static_cast<std::int64_t>(i)));
      update.add_source(*sources.back());
    }
    property.set_recalculate([this] {
      ++recalcs;
      std::int64_t sum = 0;
      for (const auto& v : sources) {
        if (v->value().is_int()) sum += v->value().as_int();
      }
      property.set_application(Value(sum));
    });
  }

  void edit_all(std::int64_t bump) {
    for (auto& v : sources) {
      v->set_user(Value(v->value().as_int() + bump));
    }
  }
};

}  // namespace

// Lazy (the thesis's policy): S edits erase once; one demand recalculates.
static void BM_LazyRecalculation(benchmark::State& state) {
  Derived d(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    d.edit_all(1);
    benchmark::DoNotOptimize(d.property.demand());
  }
  state.counters["recalcs/op"] = benchmark::Counter(
      static_cast<double>(d.recalcs), benchmark::Counter::kAvgIterations);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LazyRecalculation)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

// Eager strawman: recompute the derived property after every single edit.
static void BM_EagerRecalculation(benchmark::State& state) {
  Derived d(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (auto& v : d.sources) {
      v->set_user(Value(v->value().as_int() + 1));
      benchmark::DoNotOptimize(d.property.demand());  // keep it fresh
    }
  }
  state.counters["recalcs/op"] = benchmark::Counter(
      static_cast<double>(d.recalcs), benchmark::Counter::kAvgIterations);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EagerRecalculation)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

// The no-consumer case: pure edits.  Lazy pays only the constant erase.
static void BM_EditsWithoutDemand(benchmark::State& state) {
  Derived d(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    d.edit_all(1);
  }
  state.counters["recalcs/op"] = benchmark::Counter(
      static_cast<double>(d.recalcs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_EditsWithoutDemand)->RangeMultiplier(4)->Range(4, 256);

#include "bench_support.h"
STEMCP_BENCH_MAIN();
