// E8.1 — Fig 8.1: module selection for the ALU's generic adder, including
// the constraint-propagation validity probe (canBeSetTo).
#include <benchmark/benchmark.h>

#include "stem/stem.h"

using namespace stemcp;
using core::BoundConstraint;
using core::Rect;
using core::Transform;
using core::Value;
using env::SignalDirection;

namespace {
constexpr double kNs = 1e-9;

struct AluFixture {
  env::Library lib;
  env::CellClass* add8;
  env::CellInstance* slot;
  env::ClassDelayVar* alu_delay;

  explicit AluFixture(int realizations) {
    add8 = &lib.define_cell("ADD8");
    add8->set_generic(true);
    add8->declare_signal("in", SignalDirection::kInput);
    add8->declare_signal("out", SignalDirection::kOutput);
    add8->declare_delay("in", "out");
    // A spread of realizations: faster ones are bigger.
    for (int i = 0; i < realizations; ++i) {
      auto& r = lib.define_cell("ADD8.v" + std::to_string(i), add8);
      r.set_leaf_delay("in", "out", (4 + i) * kNs);
      r.bounding_box().set_user(
          Value(Rect{0, 0, 8, 10 + 2 * (realizations - i)}));
    }
    auto& lu8 = lib.define_cell("LU8");
    lu8.declare_signal("in", SignalDirection::kInput);
    lu8.declare_signal("out", SignalDirection::kOutput);
    lu8.set_leaf_delay("in", "out", 3 * kNs);
    lu8.bounding_box().set_user(Value(Rect{0, 0, 8, 20}));

    auto& alu = lib.define_cell("ALU");
    alu.declare_signal("in", SignalDirection::kInput);
    alu.declare_signal("out", SignalDirection::kOutput);
    alu_delay = &alu.declare_delay("in", "out");
    auto& lu = alu.add_subcell(lu8, "lu", Transform::translate({0, 0}));
    slot = &alu.add_subcell(*add8, "add", Transform::translate({0, 20}));
    auto& n_in = alu.add_net("n_in");
    n_in.connect_io("in");
    n_in.connect(lu, "in");
    auto& n_mid = alu.add_net("n_mid");
    n_mid.connect(lu, "out");
    n_mid.connect(*slot, "in");
    auto& n_out = alu.add_net("n_out");
    n_out.connect(*slot, "out");
    n_out.connect_io("out");
    alu.build_delay_networks();
    slot->bounding_box().set_user(Value(Rect{0, 20, 8, 60}));
    BoundConstraint::upper(lib.context(), *alu_delay,
                           Value((3 + 4 + realizations / 2) * kNs));
  }
};

}  // namespace

static void BM_SelectRealizations(benchmark::State& state) {
  AluFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.add8->select_realizations_for(*f.slot, {}));
  }
  state.counters["candidates"] = static_cast<double>(state.range(0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectRealizations)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

// The validity probe in isolation: a tentative delay assignment propagated
// through the ALU network and restored.
static void BM_CanBeSetToProbe(benchmark::State& state) {
  AluFixture f(8);
  auto& dv = f.slot->delay("in", "out");
  for (auto _ : state) {
    benchmark::DoNotOptimize(dv.can_be_set_to(Value(5 * kNs)));
  }
}
BENCHMARK(BM_CanBeSetToProbe);

// Selective testing ablation: delays-first does the expensive probe on
// every candidate; bBox-first filters cheaply.
static void BM_TestOrdering_BBoxFirst(benchmark::State& state) {
  AluFixture f(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.add8->select_realizations_for(*f.slot, {"bBox", "delays"}));
  }
}
BENCHMARK(BM_TestOrdering_BBoxFirst);

static void BM_TestOrdering_DelaysFirst(benchmark::State& state) {
  AluFixture f(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.add8->select_realizations_for(*f.slot, {"delays", "bBox"}));
  }
}
BENCHMARK(BM_TestOrdering_DelaysFirst);

#include "bench_support.h"
STEMCP_BENCH_MAIN();
